lib/retime/sizing.ml: Array Hashtbl List Rar_liberty Rar_netlist Rar_sta Stage
