lib/retime/outcome.mli: Format Rar_liberty Rar_netlist Stage
