lib/retime/rgraph.mli: Rar_flow Rar_netlist Stage
