lib/retime/stage.ml: Array Format Hashtbl List Logs Option Printf Rar_liberty Rar_netlist Rar_sta
