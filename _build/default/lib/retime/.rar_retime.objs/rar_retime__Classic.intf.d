lib/retime/classic.mli: Rar_flow Rar_liberty Rar_netlist
