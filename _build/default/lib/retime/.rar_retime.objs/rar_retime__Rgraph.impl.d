lib/retime/rgraph.ml: Array Hashtbl List Printf Rar_flow Rar_netlist Stage
