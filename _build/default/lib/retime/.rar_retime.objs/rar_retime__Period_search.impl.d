lib/retime/period_search.ml: Array Base_retiming Float Grar Outcome Rar_liberty Rar_netlist Rar_sta Stage
