lib/retime/base_retiming.mli: Outcome Rar_flow Rar_liberty Rar_netlist Rar_sta Stage
