lib/retime/resynth.mli: Rar_liberty Rar_netlist
