lib/retime/edl_cluster.mli: Outcome Rar_liberty
