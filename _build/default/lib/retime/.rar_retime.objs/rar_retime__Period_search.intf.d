lib/retime/period_search.mli: Rar_liberty Rar_netlist Rar_sta
