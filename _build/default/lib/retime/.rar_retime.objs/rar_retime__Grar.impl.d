lib/retime/grar.ml: Array List Outcome Printf Rar_flow Rar_liberty Rar_netlist Rar_sta Rgraph Sizing Stage Sys
