lib/retime/edl_cluster.ml: Outcome Rar_liberty Rar_netlist
