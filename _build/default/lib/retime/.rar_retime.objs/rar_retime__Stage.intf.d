lib/retime/stage.mli: Format Rar_liberty Rar_netlist Rar_sta
