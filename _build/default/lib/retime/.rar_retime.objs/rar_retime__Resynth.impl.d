lib/retime/resynth.ml: Array Float List Printf Rar_liberty Rar_netlist Rar_sta Rar_util
