lib/retime/outcome.ml: Array Format Hashtbl List Printf Rar_liberty Rar_netlist Rar_sta Stage
