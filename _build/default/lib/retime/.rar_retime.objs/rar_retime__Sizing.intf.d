lib/retime/sizing.mli: Rar_netlist Stage
