lib/retime/classic.ml: Array Hashtbl List Option Printf Rar_flow Rar_liberty Rar_netlist
