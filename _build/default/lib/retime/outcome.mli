(** Retiming outcomes: verified timing, error-detecting assignment and
    area accounting shared by every engine (G-RAR, base retiming, the
    virtual-library variants).

    The assembly step plays the role of the paper's post-retiming
    checks: it recomputes true capture arrivals for the physical slave
    placement and derives which masters actually need error detection,
    so reported areas are always consistent with timing even where the
    [g(t)] graph model was approximate. *)

module Transform = Rar_netlist.Transform
module Liberty = Rar_liberty.Liberty

type t = {
  placements : Transform.placement list;
  n_slaves : int;
  n_masters : int;           (** = number of capture points (sinks) *)
  ed_sinks : int list;       (** masters carrying error-detecting latches *)
  violations : int list;     (** sinks whose arrival exceeds [max_delay];
                                 non-empty means the engine must fix or
                                 reject *)
  arrivals : (int * float) array;  (** per sink *)
  edl_overhead : float;      (** the [c] used for the area model *)
  seq_area : float;          (** slaves + masters + EDL overhead *)
  comb_area : float;
  total_area : float;
}

val assemble :
  ?ed:int list -> c:float -> Stage.t -> Transform.placement list -> t
(** Verify a placement on a stage and account its area. [ed] overrides
    the error-detecting set (used by the virtual-library engine before
    its post-retiming swap); by default it is derived from the verified
    arrivals: a master is error-detecting iff its arrival exceeds the
    period. Masters whose arrival exceeds the period but that are not
    in an overridden [ed] set are reported in [violations] as well —
    they would silently corrupt data. *)

val of_initial : c:float -> Stage.t -> t
(** The un-retimed two-phase design: every source keeps its slave. *)

val ed_count : t -> int

val pp : Format.formatter -> t -> unit
