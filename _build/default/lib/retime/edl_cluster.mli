(** Error-signal collection trees (extension).

    The paper's §II notes that "the error signals of all error
    detecting latches within a pipeline stage must be routed and
    collected with some type of OR gate tree", and that EDLs must be
    grouped "into manageable clusters" [8]; its area model folds all of
    this into the amortised overhead [c]. This module makes the
    collection network explicit so its cost can be reported separately:
    masters are packed into clusters of bounded size, each cluster gets
    a balanced OR tree, and cluster outputs are collected by a final
    tree.

    The ablation bench uses this to show that G-RAR's EDL reduction
    also shrinks the collection network — a second-order saving the
    paper's [c] folds in implicitly. *)

module Liberty = Rar_liberty.Liberty

type t = {
  n_signals : int;        (** error-detecting masters collected *)
  clusters : int;         (** clusters of at most [max_cluster] signals *)
  or_gates : int;         (** total OR gates, cluster trees + top tree *)
  depth : int;            (** worst OR-tree depth, in gates *)
  area : float;           (** OR-gate area total *)
}

val build :
  ?max_cluster:int -> ?or_arity:int -> lib:Liberty.t -> int -> t
(** [build ~lib n_ed]: [max_cluster] defaults to 16 (the Blade-style
    cluster bound), [or_arity] to 4 (OR4 collection gates). [n_ed = 0]
    yields the empty network. *)

val annotate :
  ?max_cluster:int -> ?or_arity:int -> lib:Liberty.t -> Outcome.t ->
  Outcome.t * t
(** Recompute an outcome's areas with the collection network of its
    error-detecting set added to the sequential overhead. *)
