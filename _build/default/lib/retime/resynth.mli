(** Pre-retiming resynthesis (extension).

    The paper's introduction surveys resynthesis as the complementary
    overhead-reduction lever: "near-critical paths are sped-up by
    re-running logic synthesis with a tighter max delay constraint to
    reduce the EDL needed at the cost of increased logic area"
    [12, 17]. This module implements the two classic local rewrites
    that matter on our netlists:

    - {b redundant pair removal} — [buf] nodes and [inv∘inv] chains are
      short-circuited (pure area/delay win);
    - {b timing-driven decomposition} — associative gates wider than
      [max_arity] are rebuilt as Huffman trees over their input
      arrivals (earliest inputs deepest), so late-arriving pins see a
      single gate delay instead of a wide slow cell. Inverting kinds
      keep one inverting root over a non-inverting tree.

    Both rewrites preserve the boolean function of every primary
    output and sequential element (tested by simulation). Running
    retiming after {!optimize} is this repo's stand-in for the
    "resynthesis then retiming" flows the paper compares against. *)

module Netlist = Rar_netlist.Netlist
module Liberty = Rar_liberty.Liberty

type stats = {
  bufs_removed : int;
  inv_pairs_removed : int;
  gates_decomposed : int;
  gates_added : int;    (** tree internals created *)
}

val optimize :
  ?max_arity:int -> lib:Liberty.t -> Netlist.t -> Netlist.t * stats
(** [max_arity] defaults to 2 (full two-input decomposition). The
    library supplies the arrival-time ordering via a path-based STA of
    the netlist's combinational view. *)
