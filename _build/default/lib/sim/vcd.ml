module Netlist = Rar_netlist.Netlist
module Clocking = Rar_sta.Clocking
module Vec = Rar_util.Vec

type t = {
  design : Sim.design;
  events : (float * int * bool) Vec.t; (* absolute time, node, value *)
  mutable cycles : int;
  initial : (int, bool) Hashtbl.t; (* first-seen value per node *)
}

let create design =
  {
    design;
    events = Vec.create ();
    cycles = 0;
    initial = Hashtbl.create 64;
  }

let cycle_span design =
  (* one full period plus the resiliency window, so consecutive cycles
     never overlap in the dump *)
  Clocking.max_delay design.Sim.clocking *. 1.1

let record_cycle t ~prev ~next =
  let offset = float_of_int t.cycles *. cycle_span t.design in
  t.cycles <- t.cycles + 1;
  Sim.run_cycle
    ~on_event:(fun ~time ~node ~value ->
      if not (Hashtbl.mem t.initial node) then
        Hashtbl.replace t.initial node (not value);
      Vec.add_last t.events (offset +. time, node, value))
    t.design ~prev ~next

(* Compact VCD identifier codes: printable ASCII 33..126. *)
let code_of i =
  let base = 94 in
  let rec go i acc =
    let c = Char.chr (33 + (i mod base)) in
    let acc = String.make 1 c ^ acc in
    if i < base then acc else go ((i / base) - 1) acc
  in
  go i ""

let sanitize name =
  String.map
    (fun ch ->
      match ch with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> ch
      | _ -> '_')
    name

let to_string t =
  let net = t.design.Sim.staged in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "$date rar simulation trace $end\n";
  Buffer.add_string buf "$timescale 1ps $end\n";
  Buffer.add_string buf (Printf.sprintf "$scope module %s $end\n"
                           (sanitize (Netlist.name net)));
  (* Only dump nodes that ever changed (plus all sinks). *)
  let active = Hashtbl.create 64 in
  Vec.iter (fun (_, node, _) -> Hashtbl.replace active node ()) t.events;
  Array.iter (fun s -> Hashtbl.replace active s ()) (Netlist.outputs net);
  let ids = Hashtbl.create 64 in
  let next_id = ref 0 in
  Hashtbl.iter
    (fun node () ->
      let code = code_of !next_id in
      incr next_id;
      Hashtbl.replace ids node code;
      Buffer.add_string buf
        (Printf.sprintf "$var wire 1 %s %s $end\n" code
           (sanitize (Netlist.node_name net node))))
    active;
  Buffer.add_string buf "$upscope $end\n$enddefinitions $end\n";
  Buffer.add_string buf "$dumpvars\n";
  Hashtbl.iter
    (fun node code ->
      let v = Option.value ~default:false (Hashtbl.find_opt t.initial node) in
      Buffer.add_string buf (Printf.sprintf "%c%s\n" (if v then '1' else '0') code))
    ids;
  Buffer.add_string buf "$end\n";
  let events =
    Vec.to_array t.events
  in
  Array.sort (fun (a, _, _) (b, _, _) -> compare a b) events;
  let last_time = ref neg_infinity in
  Array.iter
    (fun (time, node, value) ->
      let ps = int_of_float (Float.round (time *. 1000.)) in
      if float_of_int ps <> !last_time then begin
        Buffer.add_string buf (Printf.sprintf "#%d\n" ps);
        last_time := float_of_int ps
      end;
      match Hashtbl.find_opt ids node with
      | Some code ->
        Buffer.add_string buf
          (Printf.sprintf "%c%s\n" (if value then '1' else '0') code)
      | None -> ())
    events;
  Buffer.contents buf

let write t path =
  let oc = open_out path in
  output_string oc (to_string t);
  close_out oc
