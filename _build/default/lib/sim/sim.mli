(** Event-driven two-vector timing simulation and error-rate
    measurement (paper Table VIII).

    Simulates one clock cycle of a retimed two-phase stage: the sources
    (master Q pins) switch from a settled previous vector to the next
    vector at the master launch edge; transitions propagate through the
    gates with the library's pin-to-pin delays; slave latches are
    opaque until [slave_open], transparent until [slave_close];
    capture points record their last transition time.

    An {e error} is a transition captured inside the resiliency window
    [(period, period + phi1]] at an error-detecting master. The same
    event at a non-error-detecting master is a {e silent failure} (the
    design would corrupt data); a verified retiming must produce none,
    and the simulator reports them separately as a safety check. *)

module Netlist = Rar_netlist.Netlist
module Transform = Rar_netlist.Transform
module Liberty = Rar_liberty.Liberty
module Clocking = Rar_sta.Clocking

type design = {
  staged : Netlist.t;
    (** combinational stage with physical [Seq Slave] nodes, as built
        by {!Transform.apply_retiming} *)
  lib : Liberty.t;
  clocking : Clocking.t;
  ed_sinks : int list;
    (** names are resolved against [staged]'s [Output] nodes via
        {!sink_of_comb} when coming from a retiming outcome *)
}

val sink_of_comb : comb:Netlist.t -> staged:Netlist.t -> int -> int
(** Map a sink node id of the pre-retiming combinational circuit to
    the corresponding [Output] node of the staged netlist (matched by
    name). *)

type cycle_result = {
  errors : int list;          (** ED masters that flagged this cycle *)
  silent : int list;          (** window hits on non-ED masters *)
  late : int list;            (** arrivals beyond [max_delay] *)
  late_at_slave : int list;   (** slaves whose input moved after closing —
                                  an observed Constraint (6) violation *)
  capture_times : (int * float) list;  (** latest transition per sink *)
}

val run_cycle :
  ?on_event:(time:float -> node:int -> value:bool -> unit) ->
  design -> prev:bool array -> next:bool array -> cycle_result
(** Simulate one launch with the given source vectors (indexed in
    [Netlist.inputs] order). [on_event] observes every applied value
    change in time order (used by the {!Vcd} writer). *)

type rate = {
  cycles : int;
  error_cycles : int;        (** cycles with at least one ED flag *)
  error_events : int;        (** total (cycle, master) flags *)
  silent_cycles : int;
  error_rate : float;        (** [error_cycles / cycles * 100], the
                                 percentage Table VIII reports *)
}

val error_rate :
  ?cycles:int -> seed:string -> design -> rate
(** Drive [cycles] (default 500) random vector pairs from a named
    deterministic stream. *)
