lib/sim/sim.mli: Rar_liberty Rar_netlist Rar_sta
