lib/sim/sim.ml: Array Float Hashtbl List Printf Rar_liberty Rar_netlist Rar_sta Rar_util
