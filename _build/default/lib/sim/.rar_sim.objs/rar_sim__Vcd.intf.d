lib/sim/vcd.mli: Sim
