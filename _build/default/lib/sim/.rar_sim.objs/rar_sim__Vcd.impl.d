lib/sim/vcd.ml: Array Buffer Char Float Hashtbl Option Printf Rar_netlist Rar_sta Rar_util Sim String
