(** VCD (value change dump) writer for simulation traces.

    Records one or more {!Sim.run_cycle} runs and writes a standard
    VCD file viewable in GTKWave & co. Node values are dumped as
    1-bit wires named after the netlist nodes; cycles are laid out
    back-to-back, each offset by one clock period plus the resiliency
    window (so a trace shows exactly where each capture lands relative
    to the window). *)

type t

val create : Sim.design -> t

val record_cycle :
  t -> prev:bool array -> next:bool array -> Sim.cycle_result
(** Run one cycle through {!Sim.run_cycle}, appending its events to the
    trace. *)

val write : t -> string -> unit
(** Write the accumulated trace. [timescale] is 1 ps; event times are
    rounded to it. *)

val to_string : t -> string
