lib/vl/movable.mli: Rar_liberty Rar_netlist Rar_sta Vl
