lib/vl/vl.ml: Array List Logs Printf Rar_flow Rar_liberty Rar_netlist Rar_retime Rar_sta Sys
