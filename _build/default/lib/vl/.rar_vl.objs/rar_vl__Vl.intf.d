lib/vl/vl.mli: Rar_flow Rar_liberty Rar_netlist Rar_retime Rar_sta
