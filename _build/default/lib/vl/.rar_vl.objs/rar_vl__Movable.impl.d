lib/vl/movable.ml: Array List Rar_liberty Rar_netlist Rar_retime Rar_sta Sys Vl
