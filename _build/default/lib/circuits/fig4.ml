module Netlist = Rar_netlist.Netlist
module Cell_kind = Rar_netlist.Cell_kind
module Transform = Rar_netlist.Transform
module Liberty = Rar_liberty.Liberty
module Clocking = Rar_sta.Clocking
module B = Netlist.Builder

(* Cell delays are selected through (kind, drive) pairs:
   buf/1 = 1.0, buf/3 = 2.0 (G5), buf/4 = 5.0 (G6),
   and/1 = 3.2 (G4), nand/1 = 1.0 (G7), inv/1 = 1.0 (G8). *)
let library () =
  let zero_latch =
    { Liberty.seq_area = 1.; d_to_q = 0.; ck_to_q = 0.; setup = 0.;
      seq_input_cap = 0. }
  in
  let flop =
    { Liberty.seq_area = 2.; d_to_q = 0.; ck_to_q = 0.; setup = 0.;
      seq_input_cap = 0. }
  in
  Liberty.synthetic ~name:"fig4" ~latch:zero_latch ~flop
    ~cells:
      [
        ((Cell_kind.Buf, 1), 1., 1.0);
        ((Cell_kind.Buf, 3), 1., 2.0);
        ((Cell_kind.Buf, 4), 1., 5.0);
        ((Cell_kind.And, 1), 1., 3.2);
        ((Cell_kind.Nand, 1), 1., 1.0);
        ((Cell_kind.Inv, 1), 1., 1.0);
      ]

let clocking = Clocking.v ~phi1:2.5 ~gamma1:2.5 ~phi2:2.5 ~gamma2:2.5

let circuit () =
  let b = B.create ~name:"fig4" () in
  let pi_a = B.add_input b "pi_a" in
  let pi_b = B.add_input b "pi_b" in
  let i1 = B.add_gate b "I1" ~fn:Cell_kind.Buf ~fanins:[ pi_a ] () in
  let i2 = B.add_gate b "I2" ~fn:Cell_kind.Buf ~fanins:[ pi_b ] () in
  let g3 = B.add_gate b "G3" ~fn:Cell_kind.Buf ~fanins:[ i1 ] () in
  let g5 = B.add_gate b "G5" ~fn:Cell_kind.Buf ~drive:3 ~fanins:[ i2 ] () in
  let g4 =
    B.add_gate b "G4" ~fn:Cell_kind.And ~fanins:[ g3; g5; i2 ] ()
  in
  let g6 = B.add_gate b "G6" ~fn:Cell_kind.Buf ~drive:4 ~fanins:[ g3 ] () in
  let g7 = B.add_gate b "G7" ~fn:Cell_kind.Nand ~fanins:[ g6; g5; g4 ] () in
  let g8 = B.add_gate b "G8" ~fn:Cell_kind.Inv ~fanins:[ g7 ] () in
  let _o9 = B.add_output b "O9" ~fanin:g8 in
  let net = B.freeze b in
  (* Already combinational: extract_comb is the identity modulo the
     source/sink bookkeeping. *)
  Transform.extract_comb net

let node cc name =
  match Netlist.find cc.Transform.comb name with
  | Some v -> v
  | None -> raise Not_found
