(** Structured generator for a Plasma-like 3-stage MIPS pipeline
    (stands in for the OpenCores Plasma core of Table I).

    Unlike the seeded random ISCAS89 stand-ins, this netlist is built
    from real datapath structure, so its timing profile is CPU-shaped:

    - {b fetch}: 32-bit ripple PC incrementer, branch-target mux;
    - {b decode}: 32-entry x 32-bit flop register file with two
      mux-tree read ports, opcode decode cloud, immediate extension;
    - {b execute}: ripple-carry adder/subtractor, bitwise unit,
      5-stage barrel shifter, comparator, ALU result mux tree;
    - {b writeback}: per-bit write-enable muxes into the register
      file.

    The carry chains make the execute stage dominate the clock period,
    so the near-critical endpoints are the ALU-fed pipeline registers —
    the same shape that makes the real Plasma a good resiliency
    benchmark. *)

val generate : unit -> Rar_netlist.Netlist.t
(** Deterministic (the RNG only randomises the decode cloud, from a
    fixed seed). *)
