(** The paper's illustrative circuit (Fig. 4 / Fig. 5), reconstructed.

    The figure itself is not in the text, so gate delays and the exact
    topology are re-derived from every number the prose quotes. The
    reconstruction reproduces:

    - [D^f(G7) = 8], [D^f(G8) = 9], [D^f(O9) = 9];
    - [A(G6,G7,O9) = 9], [A(G3,G6,O9) = 12], [A(G5,G7,O9) = 7],
      [A(I2,G5,O9) = 12.2] (paper: 12);
    - regions [V_m = {I1}] (plus the virtual sources), [V_n = {G7, G8,
      O9}], the rest [V_r];
    - the optimal retiming [r(I2) = r(G3) = r(G4) = r(G5) = r(G6) =
      r(P(O9)) = -1] with three slave latches and a non-error-detecting
      O9 (Cut2, 4 area units at c = 2) beating the min-latch solution
      (Cut1: two slaves + one EDL master = 5 units);
    - with low overhead (c = 0.5) the trade flips and Cut1 wins.

    Known deviations from the prose, caused by the reconstruction:
    [D^b(I1, O9) = 8] (paper: 9) and [g(O9) = {G4, G5, G6}] (paper:
    {G5, G6}) — both on the same side of every threshold that the
    algorithm actually tests. *)

module Netlist = Rar_netlist.Netlist
module Transform = Rar_netlist.Transform
module Liberty = Rar_liberty.Liberty
module Clocking = Rar_sta.Clocking

val library : unit -> Liberty.t
(** Constant-delay cells; zero-delay, zero-setup latches ([D_l = 0]). *)

val clocking : Clocking.t
(** [phi1 = gamma1 = phi2 = gamma2 = 2.5]: period 10, max delay 12.5. *)

val circuit : unit -> Transform.comb_circuit
(** The combinational stage: sources [pi_a, pi_b]; gates [I1, I2, G3
    .. G8]; sink [O9]. *)

val node : Transform.comb_circuit -> string -> int
(** Node id by name; raises [Not_found]. *)
