module Netlist = Rar_netlist.Netlist
module Cell_kind = Rar_netlist.Cell_kind
module Rng = Rar_util.Rng
module B = Netlist.Builder

let word = 32
let n_regs = 32

type ctx = { b : B.t; mutable n : int; rng : Rng.t }

let fresh ctx prefix =
  ctx.n <- ctx.n + 1;
  Printf.sprintf "%s_%d" prefix ctx.n

let gate ctx prefix fn fanins =
  B.add_gate ctx.b (fresh ctx prefix) ~fn ~fanins ()

let inv ctx a = gate ctx "inv" Cell_kind.Inv [ a ]
let and2 ctx a b = gate ctx "and" Cell_kind.And [ a; b ]
let or2 ctx a b = gate ctx "or" Cell_kind.Or [ a; b ]
let xor2 ctx a b = gate ctx "xor" Cell_kind.Xor [ a; b ]
let nor2 ctx a b = gate ctx "nor" Cell_kind.Nor [ a; b ]
let mux2 ctx a b s = gate ctx "mux" Cell_kind.Mux2 [ a; b; s ]

(* Full adder from 2 xors + aoi-style majority. *)
let full_adder ctx a b cin =
  let p = xor2 ctx a b in
  let s = xor2 ctx p cin in
  let g1 = and2 ctx a b in
  let g2 = and2 ctx p cin in
  let cout = or2 ctx g1 g2 in
  (s, cout)

(* Ripple-carry adder; the long carry chain is the critical path of the
   execute stage, just as in a real unoptimised core. *)
let adder ctx xs ys cin =
  let n = Array.length xs in
  let sums = Array.make n 0 in
  let carry = ref cin in
  for i = 0 to n - 1 do
    let s, c = full_adder ctx xs.(i) ys.(i) !carry in
    sums.(i) <- s;
    carry := c
  done;
  (sums, !carry)

(* Balanced mux tree selecting one of [inputs] (power of two) by the
   select bits, LSB first. *)
let rec mux_tree ctx (sels : int array) level (inputs : int array) =
  if Array.length inputs = 1 then inputs.(0)
  else begin
    let half = Array.length inputs / 2 in
    let next =
      Array.init half (fun i ->
          mux2 ctx inputs.(2 * i) inputs.((2 * i) + 1) sels.(level))
    in
    mux_tree ctx sels (level + 1) next
  end

let barrel_shift ctx (xs : int array) (sels : int array) =
  (* Left shifter: 5 mux stages, shifting in the LSB-side neighbour (a
     zero would need a constant; reusing bit 0 keeps the netlist pure
     logic with identical timing shape). *)
  let stage xs k sel =
    Array.init (Array.length xs) (fun i ->
        let shifted = if i >= k then xs.(i - k) else xs.(0) in
        mux2 ctx xs.(i) shifted sel)
  in
  let r = ref xs in
  Array.iteri (fun j sel -> r := stage !r (1 lsl j) sel) sels;
  !r

(* A small random two-level decode cloud over the given signals. *)
let random_cloud ctx inputs n_out =
  Array.init n_out (fun _ ->
      let pick () = Rng.pick ctx.rng inputs in
      let a = and2 ctx (pick ()) (pick ()) in
      let b = nor2 ctx (pick ()) (pick ()) in
      let c = xor2 ctx a b in
      if Rng.bool ctx.rng then inv ctx c else c)

let generate () =
  let b = B.create ~name:"plasma" () in
  let ctx = { b; n = 0; rng = Rng.of_string "plasma" } in
  (* External interface: memory read data, interrupt, a few control
     pins. *)
  let mem_rdata = Array.init word (fun i -> B.add_input b (Printf.sprintf "mem_rdata%d" i)) in
  let irq = B.add_input b "irq" in
  let stall = B.add_input b "mem_pause" in
  (* --- pipeline state ------------------------------------------- *)
  (* Deferred flops so clouds can reference their Q pins. *)
  let defer prefix n =
    Array.init n (fun i ->
        B.add_seq_deferred b (Printf.sprintf "%s%d" prefix i) ~role:Netlist.Flop)
  in
  let pc = defer "pc" word in
  let instr = defer "ir" word in
  let regfile =
    Array.init n_regs (fun r -> defer (Printf.sprintf "rf%d_" r) word)
  in
  let ex_a = defer "ex_a" word in
  let ex_b = defer "ex_b" word in
  let ex_imm = defer "ex_imm" word in
  let ex_ctl = defer "ex_ctl" 8 in
  let wb_res = defer "wb_res" word in
  let hi = defer "hi" word in
  let lo = defer "lo" word in
  let mem_addr = defer "mem_addr" word in
  let mem_wdata = defer "mem_wdata" word in
  (* --- fetch ------------------------------------------------------ *)
  (* PC + 4: ripple increment; branch target mux decides next PC. *)
  let four = Array.init word (fun i -> if i = 2 then irq else stall) in
  (* constants are modelled by external pins; timing-equivalent *)
  let pc_plus4, _ = adder ctx pc four stall in
  let branch_base = Array.map (fun x -> x) ex_imm in
  let branch_tgt, _ = adder ctx pc_plus4 branch_base irq in
  let take_branch =
    let cloud = random_cloud ctx (Array.append ex_ctl [| irq; stall |]) 3 in
    or2 ctx cloud.(0) (and2 ctx cloud.(1) cloud.(2))
  in
  let next_pc = Array.init word (fun i -> mux2 ctx pc_plus4.(i) branch_tgt.(i) take_branch) in
  Array.iteri (fun i ff -> B.connect b ff ~fanins:[ next_pc.(i) ]) pc;
  (* Instruction register: memory data muxed with the previous word on
     stall. *)
  Array.iteri
    (fun i ff -> B.connect b ff ~fanins:[ mux2 ctx mem_rdata.(i) instr.(i) stall ])
    instr;
  (* --- decode ----------------------------------------------------- *)
  let rs = Array.sub instr 21 5 in
  let rt = Array.sub instr 16 5 in
  let opcode = Array.sub instr 26 6 in
  let read_port sels =
    Array.init word (fun bit ->
        let column = Array.init n_regs (fun r -> regfile.(r).(bit)) in
        mux_tree ctx sels 0 column)
  in
  let a_val = read_port rs in
  let b_val = read_port rt in
  let ctl_cloud = random_cloud ctx (Array.append opcode [| irq |]) 24 in
  let imm =
    Array.init word (fun i ->
        if i < 16 then instr.(i) else mux2 ctx instr.(15) ctl_cloud.(0) ctl_cloud.(1))
  in
  Array.iteri (fun i ff -> B.connect b ff ~fanins:[ a_val.(i) ]) ex_a;
  Array.iteri (fun i ff -> B.connect b ff ~fanins:[ b_val.(i) ]) ex_b;
  Array.iteri (fun i ff -> B.connect b ff ~fanins:[ imm.(i) ]) ex_imm;
  Array.iteri (fun i ff -> B.connect b ff ~fanins:[ ctl_cloud.(2 + i) ]) ex_ctl;
  (* --- execute ---------------------------------------------------- *)
  let use_imm = ex_ctl.(0) in
  let opnd_b = Array.init word (fun i -> mux2 ctx ex_b.(i) ex_imm.(i) use_imm) in
  let sub_b = Array.init word (fun i -> xor2 ctx opnd_b.(i) ex_ctl.(1)) in
  let sum, cout = adder ctx ex_a sub_b ex_ctl.(1) in
  let log_and = Array.init word (fun i -> and2 ctx ex_a.(i) opnd_b.(i)) in
  let log_or = Array.init word (fun i -> or2 ctx ex_a.(i) opnd_b.(i)) in
  let log_xor = Array.init word (fun i -> xor2 ctx ex_a.(i) opnd_b.(i)) in
  let sh_amt = Array.sub ex_ctl 2 5 in
  let shifted = barrel_shift ctx ex_a sh_amt in
  let slt = xor2 ctx cout ex_a.(word - 1) in
  let alu =
    Array.init word (fun i ->
        let m1 = mux2 ctx sum.(i) log_and.(i) ex_ctl.(6) in
        let m2 = mux2 ctx log_or.(i) log_xor.(i) ex_ctl.(6) in
        let m3 = mux2 ctx m1 m2 ex_ctl.(7) in
        let m4 = mux2 ctx m3 shifted.(i) ex_ctl.(5) in
        if i = 0 then mux2 ctx m4 slt ex_ctl.(4) else m4)
  in
  Array.iteri (fun i ff -> B.connect b ff ~fanins:[ alu.(i) ]) wb_res;
  Array.iteri (fun i ff -> B.connect b ff ~fanins:[ sum.(i) ]) mem_addr;
  Array.iteri (fun i ff -> B.connect b ff ~fanins:[ ex_b.(i) ]) mem_wdata;
  (* HI/LO fed by a shifted-accumulate structure (stand-in for the
     serial multiplier). *)
  let acc, _ = adder ctx hi lo ex_ctl.(3) in
  Array.iteri (fun i ff -> B.connect b ff ~fanins:[ mux2 ctx acc.(i) ex_a.(i) ex_ctl.(2) ]) hi;
  Array.iteri
    (fun i ff ->
      B.connect b ff ~fanins:[ mux2 ctx lo.(i) sum.(i) ex_ctl.(3) ])
    lo;
  (* --- writeback --------------------------------------------------- *)
  let wb_val = Array.init word (fun i -> mux2 ctx wb_res.(i) mem_rdata.(i) ex_ctl.(4)) in
  let wdec = random_cloud ctx (Array.append (Array.sub instr 11 5) [| ex_ctl.(5) |]) n_regs in
  Array.iteri
    (fun r bank ->
      Array.iteri
        (fun i ff ->
          B.connect b ff ~fanins:[ mux2 ctx bank.(i) wb_val.(i) wdec.(r) ])
        bank)
    regfile;
  (* --- outputs ------------------------------------------------------ *)
  Array.iteri (fun i v -> ignore (B.add_output b (Printf.sprintf "mem_addr_o%d" i) ~fanin:v)) mem_addr;
  Array.iteri (fun i v -> ignore (B.add_output b (Printf.sprintf "mem_wdata_o%d" i) ~fanin:v)) mem_wdata;
  ignore (B.add_output b "mem_we" ~fanin:(and2 ctx ex_ctl.(6) ex_ctl.(7)));
  B.freeze b
