(** Prepared benchmarks: generate, convert to two-phase, derive the
    clock, measure the Table I statistics. The single entry point every
    experiment driver uses. *)

module Netlist = Rar_netlist.Netlist
module Transform = Rar_netlist.Transform
module Liberty = Rar_liberty.Liberty
module Sta = Rar_sta.Sta
module Clocking = Rar_sta.Clocking

type prepared = {
  name : string;
  flop_netlist : Netlist.t;   (** original flip-flop design *)
  two_phase : Netlist.t;      (** after master/slave splitting *)
  cc : Transform.comb_circuit;
  lib : Liberty.t;
  clocking : Clocking.t;      (** the paper's 0.3/0/0.35/0.05 split of [p] *)
  p : float;                  (** derived max stage delay *)
  n_flops : int;
  nce : int;                  (** measured near-critical endpoints *)
  flop_area : float;          (** area of the flop-based design (Table I) *)
  runtime_s : float;          (** preparation time *)
}

val derive_clocking : Liberty.t -> Transform.comb_circuit -> Clocking.t * float
(** Path-based STA over the stage; [p] is the measured critical arrival
    plus a latch-delay guard band, split per §VI-A. *)

val prepare : ?lib:Liberty.t -> Netlist.t -> prepared
(** Prepare an arbitrary flop-based netlist (e.g. a parsed ".bench"
    file). [lib] defaults to {!Liberty.default}. *)

val load : ?lib:Liberty.t -> string -> (prepared, string) result
(** Load a named benchmark (Table I names or ["plasma"];
    case-insensitive). *)

val load_all : ?lib:Liberty.t -> unit -> prepared list
(** All twelve, in Table I order. *)
