lib/circuits/plasma.ml: Array Printf Rar_netlist Rar_util
