lib/circuits/spec.mli:
