lib/circuits/generator.ml: Array Float Hashtbl List Option Printf Rar_netlist Rar_util Spec
