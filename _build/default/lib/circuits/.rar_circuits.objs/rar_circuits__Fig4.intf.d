lib/circuits/fig4.mli: Rar_liberty Rar_netlist Rar_sta
