lib/circuits/generator.mli: Rar_netlist Spec
