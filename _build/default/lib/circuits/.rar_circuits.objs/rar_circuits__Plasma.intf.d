lib/circuits/plasma.mli: Rar_netlist
