lib/circuits/spec.ml: List String
