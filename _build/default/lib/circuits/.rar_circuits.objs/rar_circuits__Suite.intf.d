lib/circuits/suite.mli: Rar_liberty Rar_netlist Rar_sta
