lib/circuits/suite.ml: Array Float Generator List Plasma Printf Rar_liberty Rar_netlist Rar_sta Spec String Sys
