lib/circuits/fig4.ml: Rar_liberty Rar_netlist Rar_sta
