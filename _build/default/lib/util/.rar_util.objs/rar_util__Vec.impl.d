lib/util/vec.ml: Array List Printf
