lib/util/heap.mli:
