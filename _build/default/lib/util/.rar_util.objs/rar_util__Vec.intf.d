lib/util/vec.mli:
