lib/util/rng.mli:
