lib/util/heap.ml: Vec
