type 'a t = { mutable data : 'a array; mutable len : int }

let create () = { data = [||]; len = 0 }

let make n x = { data = Array.make (max n 1) x; len = n }

let length t = t.len

let check t i op =
  if i < 0 || i >= t.len then
    invalid_arg (Printf.sprintf "Vec.%s: index %d out of bounds (len %d)" op i t.len)

let get t i =
  check t i "get";
  t.data.(i)

let set t i x =
  check t i "set";
  t.data.(i) <- x

let grow t x =
  let cap = Array.length t.data in
  let cap' = if cap = 0 then 8 else 2 * cap in
  let data = Array.make cap' x in
  Array.blit t.data 0 data 0 t.len;
  t.data <- data

let add_last t x =
  if t.len = Array.length t.data then grow t x;
  t.data.(t.len) <- x;
  t.len <- t.len + 1

let pop_last t =
  if t.len = 0 then invalid_arg "Vec.pop_last: empty";
  t.len <- t.len - 1;
  t.data.(t.len)

let clear t = t.len <- 0
let is_empty t = t.len = 0

let iter f t =
  for i = 0 to t.len - 1 do
    f t.data.(i)
  done

let iteri f t =
  for i = 0 to t.len - 1 do
    f i t.data.(i)
  done

let fold_left f acc t =
  let acc = ref acc in
  for i = 0 to t.len - 1 do
    acc := f !acc t.data.(i)
  done;
  !acc

let to_array t = Array.sub t.data 0 t.len

let to_list t =
  let rec go i acc = if i < 0 then acc else go (i - 1) (t.data.(i) :: acc) in
  go (t.len - 1) []

let of_list l =
  let t = create () in
  List.iter (add_last t) l;
  t
