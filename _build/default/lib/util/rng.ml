type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let make seed = { state = Int64.of_int seed }

let of_string s =
  (* FNV-1a over the bytes, then into splitmix. *)
  let h = ref 0xCBF29CE484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001B3L)
    s;
  { state = !h }

let next t =
  t.state <- Int64.add t.state golden;
  mix t.state

let split t = { state = next t }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound <= 0";
  (* Shift by 2 so the value fits OCaml's 63-bit int non-negatively. *)
  let r = Int64.to_int (Int64.shift_right_logical (next t) 2) in
  r mod bound

let float t x =
  let r = Int64.to_float (Int64.shift_right_logical (next t) 11) in
  x *. (r /. 9007199254740992.0 (* 2^53 *))

let bool t = Int64.logand (next t) 1L = 1L

let range t lo hi =
  if lo > hi then invalid_arg "Rng.range: lo > hi";
  lo + int t (hi - lo + 1)

let pick t a =
  if Array.length a = 0 then invalid_arg "Rng.pick: empty array";
  a.(int t (Array.length a))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let x = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- x
  done
