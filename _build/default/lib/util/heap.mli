(** Binary min-heap keyed by floats, used by Dijkstra-style searches and
    the event-driven simulator. Entries are (priority, payload) pairs;
    duplicates are allowed (lazy-deletion style usage). *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool
val add : 'a t -> float -> 'a -> unit
val pop_min : 'a t -> (float * 'a) option
val peek_min : 'a t -> (float * 'a) option
val clear : 'a t -> unit
