type 'a t = (float * 'a) Vec.t

let create () = Vec.create ()
let length = Vec.length
let is_empty t = Vec.is_empty t
let clear = Vec.clear

let swap t i j =
  let x = Vec.get t i in
  Vec.set t i (Vec.get t j);
  Vec.set t j x

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if fst (Vec.get t i) < fst (Vec.get t parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let n = Vec.length t in
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < n && fst (Vec.get t l) < fst (Vec.get t !smallest) then smallest := l;
  if r < n && fst (Vec.get t r) < fst (Vec.get t !smallest) then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let add t p x =
  Vec.add_last t (p, x);
  sift_up t (Vec.length t - 1)

let peek_min t = if Vec.is_empty t then None else Some (Vec.get t 0)

let pop_min t =
  if Vec.is_empty t then None
  else begin
    let top = Vec.get t 0 in
    let last = Vec.pop_last t in
    if not (Vec.is_empty t) then begin
      Vec.set t 0 last;
      sift_down t 0
    end;
    Some top
  end
