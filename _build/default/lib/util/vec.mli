(** Growable arrays (OCaml 5.1 has no [Dynarray] yet). *)

type 'a t

val create : unit -> 'a t
val make : int -> 'a -> 'a t
(** [make n x] is a vector holding [n] copies of [x]. *)

val length : 'a t -> int
val get : 'a t -> int -> 'a
val set : 'a t -> int -> 'a -> unit
val add_last : 'a t -> 'a -> unit
val pop_last : 'a t -> 'a
(** Raises [Invalid_argument] when empty. *)

val clear : 'a t -> unit
val is_empty : 'a t -> bool
val iter : ('a -> unit) -> 'a t -> unit
val iteri : (int -> 'a -> unit) -> 'a t -> unit
val fold_left : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
val to_array : 'a t -> 'a array
val to_list : 'a t -> 'a list
val of_list : 'a list -> 'a t
