(** Deterministic splittable RNG (splitmix64).

    Every stochastic component of this project (benchmark generators,
    error-rate simulation vectors) draws from an explicit [Rng.t] so
    results are reproducible from a named seed; nothing consults the
    global [Random] state. *)

type t

val make : int -> t
(** Seeded generator. *)

val of_string : string -> t
(** Seed derived from a name, so each benchmark circuit has a stable
    identity across runs. *)

val split : t -> t
(** Independent child stream; the parent advances. *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound); [bound > 0]. *)

val float : t -> float -> float
(** [float t x] is uniform in [0, x). *)

val bool : t -> bool

val range : t -> int -> int -> int
(** [range t lo hi] is uniform in [lo, hi] inclusive; [lo <= hi]. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates. *)
