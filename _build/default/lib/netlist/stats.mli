(** Aggregate statistics over a netlist, used by Table I reporting and
    by generator calibration. *)

type t = {
  n_inputs : int;
  n_outputs : int;
  n_gates : int;
  n_flops : int;
  n_masters : int;
  n_slaves : int;
  depth : int;              (** longest combinational path, in gates *)
  avg_fanin : float;        (** mean gate fanin *)
  avg_fanout : float;       (** mean fanout of gate/input/seq drivers *)
  fn_histogram : (Cell_kind.t * int) list;  (** gate kind counts *)
}

val compute : Netlist.t -> t
val pp : Format.formatter -> t -> unit
