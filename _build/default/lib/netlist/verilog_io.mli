(** Structural Verilog reader/writer (gate-primitive subset).

    The writer emits one module per netlist using Verilog's built-in
    gate primitives where they exist ([and], [nand], [or], [nor],
    [xor], [xnor], [not], [buf]; output port first) and instance-style
    cells for the rest ([aoi21], [oai21], [mux2] — inputs in pin
    order — and the sequential cells [dff], [latch_m], [latch_s] with
    ports [(Q, D)]). Non-unit drive strengths are recorded as an
    attribute, e.g. [(* drive = 2 *) nand g1 (y, a, b);].

    The reader accepts exactly that subset (plus whitespace/comments),
    which is enough to round-trip any netlist this project produces and
    to import gate-level netlists written in the same style. *)

val print : Netlist.t -> string
val write_file : string -> Netlist.t -> unit

val parse : string -> (Netlist.t, string) result
(** Errors carry a line number and reason. *)

val parse_file : string -> (Netlist.t, string) result
