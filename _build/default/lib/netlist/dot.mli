(** Graphviz DOT export, for inspecting small circuits and retiming
    results (the Fig. 4/5 walkthrough renders through this). *)

val of_netlist :
  ?highlight:(int -> string option) -> Netlist.t -> string
(** Render nodes shaped by kind (inputs as triangles, outputs as
    inverted triangles, sequential elements as boxes, gates as
    ellipses). [highlight v] may return a fill colour for node [v]. *)

val write_file : string -> ?highlight:(int -> string option) -> Netlist.t -> unit
