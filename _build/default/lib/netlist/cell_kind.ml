type t =
  | Buf
  | Inv
  | And
  | Nand
  | Or
  | Nor
  | Xor
  | Xnor
  | Aoi21
  | Oai21
  | Mux2

let all = [ Buf; Inv; And; Nand; Or; Nor; Xor; Xnor; Aoi21; Oai21; Mux2 ]

let name = function
  | Buf -> "buf"
  | Inv -> "inv"
  | And -> "and"
  | Nand -> "nand"
  | Or -> "or"
  | Nor -> "nor"
  | Xor -> "xor"
  | Xnor -> "xnor"
  | Aoi21 -> "aoi21"
  | Oai21 -> "oai21"
  | Mux2 -> "mux2"

let of_name s =
  match String.lowercase_ascii s with
  | "buf" | "buff" -> Some Buf
  | "inv" | "not" -> Some Inv
  | "and" -> Some And
  | "nand" -> Some Nand
  | "or" -> Some Or
  | "nor" -> Some Nor
  | "xor" -> Some Xor
  | "xnor" -> Some Xnor
  | "aoi21" -> Some Aoi21
  | "oai21" -> Some Oai21
  | "mux2" | "mux" -> Some Mux2
  | _ -> None

let arity = function
  | Buf | Inv -> Some 1
  | Aoi21 | Oai21 | Mux2 -> Some 3
  | And | Nand | Or | Nor | Xor | Xnor -> None

let min_arity = function
  | Buf | Inv -> 1
  | And | Nand | Or | Nor | Xor | Xnor -> 2
  | Aoi21 | Oai21 | Mux2 -> 3

let valid_arity k n =
  match arity k with Some a -> n = a | None -> n >= min_arity k

let check_arity k inputs =
  if not (valid_arity k (Array.length inputs)) then
    invalid_arg
      (Printf.sprintf "Cell_kind.eval: %s cannot take %d inputs" (name k)
         (Array.length inputs))

let eval k inputs =
  check_arity k inputs;
  match k with
  | Buf -> inputs.(0)
  | Inv -> not inputs.(0)
  | And -> Array.for_all Fun.id inputs
  | Nand -> not (Array.for_all Fun.id inputs)
  | Or -> Array.exists Fun.id inputs
  | Nor -> not (Array.exists Fun.id inputs)
  | Xor -> Array.fold_left (fun acc b -> if b then not acc else acc) false inputs
  | Xnor ->
    Array.fold_left (fun acc b -> if b then not acc else acc) true inputs
  | Aoi21 -> not ((inputs.(0) && inputs.(1)) || inputs.(2))
  | Oai21 -> not ((inputs.(0) || inputs.(1)) && inputs.(2))
  | Mux2 -> if inputs.(2) then inputs.(1) else inputs.(0)

type unateness = Positive | Negative | Non_unate

let unateness k pin =
  match k with
  | Buf | And | Or -> Positive
  | Inv | Nand | Nor | Aoi21 | Oai21 -> Negative
  | Xor | Xnor -> Non_unate
  | Mux2 -> if pin = 2 then Non_unate else Positive

let is_inverting = function
  | Inv | Nand | Nor | Xnor | Aoi21 | Oai21 -> true
  | Buf | And | Or | Xor | Mux2 -> false

let pp ppf k = Format.pp_print_string ppf (name k)
