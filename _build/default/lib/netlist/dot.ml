let shape net v =
  match Netlist.kind net v with
  | Netlist.Input -> "triangle"
  | Netlist.Output -> "invtriangle"
  | Netlist.Seq _ -> "box"
  | Netlist.Gate _ -> "ellipse"

let label net v =
  match Netlist.kind net v with
  | Netlist.Gate { fn; drive } ->
    if drive = 1 then
      Printf.sprintf "%s\\n%s" (Netlist.node_name net v) (Cell_kind.name fn)
    else
      Printf.sprintf "%s\\n%s x%d" (Netlist.node_name net v) (Cell_kind.name fn)
        drive
  | Netlist.Seq Netlist.Master -> Netlist.node_name net v ^ "\\nmaster"
  | Netlist.Seq Netlist.Slave -> Netlist.node_name net v ^ "\\nslave"
  | Netlist.Seq Netlist.Flop -> Netlist.node_name net v ^ "\\ndff"
  | Netlist.Input | Netlist.Output -> Netlist.node_name net v

let of_netlist ?(highlight = fun _ -> None) net =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "digraph %S {\n  rankdir=LR;\n" (Netlist.name net));
  for v = 0 to Netlist.node_count net - 1 do
    let fill =
      match highlight v with
      | Some colour -> Printf.sprintf ", style=filled, fillcolor=%S" colour
      | None -> ""
    in
    Buffer.add_string buf
      (Printf.sprintf "  n%d [label=\"%s\", shape=%s%s];\n" v (label net v)
         (shape net v) fill)
  done;
  Netlist.iter_edges net (fun u v ->
      Buffer.add_string buf (Printf.sprintf "  n%d -> n%d;\n" u v));
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let write_file path ?highlight net =
  let oc = open_out path in
  output_string oc (of_netlist ?highlight net);
  close_out oc
