module B = Netlist.Builder

(* Rebuild [net] node by node. [remap] decides, per original node, what
   to create; it returns the new id downstream fanouts should use and
   optionally a (deferred new id, original fanin owner) pair to wire up
   in a second pass. All flows below share this two-pass skeleton. *)

let to_two_phase net =
  let n = Netlist.node_count net in
  let b = B.create ~name:(Netlist.name net) () in
  let repr = Array.make n (-1) in
  (* new id that fanouts of original node v reference *)
  let deferred = ref [] in
  (* (new deferred id, original id whose fanins it takes) *)
  for v = 0 to n - 1 do
    let name = Netlist.node_name net v in
    match Netlist.kind net v with
    | Netlist.Input -> repr.(v) <- B.add_input b name
    | Netlist.Output ->
      let id = B.add_output_deferred b name in
      deferred := (id, v) :: !deferred
    | Netlist.Gate { fn; drive } ->
      let id = B.add_gate_deferred b name ~fn ~drive () in
      repr.(v) <- id;
      deferred := (id, v) :: !deferred
    | Netlist.Seq Netlist.Flop ->
      let m = B.add_seq_deferred b (name ^ "$m") ~role:Netlist.Master in
      let s = B.add_seq b (name ^ "$s") ~role:Netlist.Slave ~fanin:m in
      repr.(v) <- s;
      deferred := (m, v) :: !deferred
    | Netlist.Seq role ->
      let id = B.add_seq_deferred b name ~role in
      repr.(v) <- id;
      deferred := (id, v) :: !deferred
  done;
  List.iter
    (fun (id, v) ->
      let fanins =
        Array.to_list (Array.map (fun u -> repr.(u)) (Netlist.fanins net v))
      in
      B.connect b id ~fanins)
    !deferred;
  B.freeze b

type comb_circuit = {
  comb : Netlist.t;
  source_of : (int * int) array;
  sink_of : (int * int) array;
  gate_of : int array;
}

let extract_comb net =
  let n = Netlist.node_count net in
  (* Resolve the combinational driver seen through slave latches: the
     value feeding downstream logic originates at the slave's
     transitive driver. *)
  let rec driver v =
    match Netlist.kind net v with
    | Netlist.Seq Netlist.Slave -> driver (Netlist.fanins net v).(0)
    | _ -> v
  in
  let b = B.create ~name:(Netlist.name net ^ "$comb") () in
  let repr = Array.make n (-1) in
  let sources = ref [] and sinks = ref [] and gate_pairs = ref [] in
  let deferred = ref [] in
  for v = 0 to n - 1 do
    let name = Netlist.node_name net v in
    match Netlist.kind net v with
    | Netlist.Input ->
      let id = B.add_input b name in
      repr.(v) <- id;
      sources := (id, v) :: !sources
    | Netlist.Seq (Netlist.Master | Netlist.Flop) ->
      (* Q side: a fresh source. D side: a fresh sink, wired in pass 2. *)
      let q = B.add_input b (name ^ "$q") in
      repr.(v) <- q;
      sources := (q, v) :: !sources;
      let d = B.add_output_deferred b (name ^ "$d") in
      sinks := (d, v) :: !sinks;
      deferred := (d, v) :: !deferred
    | Netlist.Seq Netlist.Slave -> () (* bypassed *)
    | Netlist.Gate { fn; drive } ->
      let id = B.add_gate_deferred b name ~fn ~drive () in
      repr.(v) <- id;
      gate_pairs := (id, v) :: !gate_pairs;
      deferred := (id, v) :: !deferred
    | Netlist.Output ->
      let id = B.add_output_deferred b name in
      sinks := (id, v) :: !sinks;
      deferred := (id, v) :: !deferred
  done;
  List.iter
    (fun (id, v) ->
      let fanins =
        Array.to_list
          (Array.map (fun u -> repr.(driver u)) (Netlist.fanins net v))
      in
      B.connect b id ~fanins)
    !deferred;
  let comb = B.freeze b in
  let gate_of = Array.make (Netlist.node_count comb) (-1) in
  List.iter (fun (id, v) -> gate_of.(id) <- v) !gate_pairs;
  {
    comb;
    source_of = Array.of_list (List.rev !sources);
    sink_of = Array.of_list (List.rev !sinks);
    gate_of;
  }

type placement = { after : int; latched : (int * int) list }

let count_slaves placements = List.length placements

let apply_retiming cc placements =
  let net = cc.comb in
  let n = Netlist.node_count net in
  (* For each (node, pin), the placement index that captures it, if any. *)
  let capture = Hashtbl.create 64 in
  List.iteri
    (fun i p ->
      List.iter
        (fun (v, pin) ->
          let fi = Netlist.fanins net v in
          if pin < 0 || pin >= Array.length fi then
            invalid_arg "Transform.apply_retiming: pin out of range";
          if fi.(pin) <> p.after then
            invalid_arg
              (Printf.sprintf
                 "Transform.apply_retiming: pin %d of %s is not driven by %s"
                 pin (Netlist.node_name net v)
                 (Netlist.node_name net p.after));
          if Hashtbl.mem capture (v, pin) then
            invalid_arg "Transform.apply_retiming: pin latched twice";
          Hashtbl.add capture (v, pin) i)
        p.latched)
    placements;
  let b = B.create ~name:(Netlist.name net ^ "$retimed") () in
  let repr = Array.make n (-1) in
  let deferred = ref [] in
  for v = 0 to n - 1 do
    let name = Netlist.node_name net v in
    match Netlist.kind net v with
    | Netlist.Input -> repr.(v) <- B.add_input b name
    | Netlist.Gate { fn; drive } ->
      let id = B.add_gate_deferred b name ~fn ~drive () in
      repr.(v) <- id;
      deferred := (id, v) :: !deferred
    | Netlist.Output ->
      let id = B.add_output_deferred b name in
      deferred := (id, v) :: !deferred
    | Netlist.Seq _ ->
      invalid_arg "Transform.apply_retiming: expected a combinational circuit"
  done;
  (* One physical slave per placement, created after its driver exists. *)
  let slave_id =
    Array.of_list
      (List.mapi
         (fun i p ->
           let name =
             Printf.sprintf "%s$slv%d" (Netlist.node_name net p.after) i
           in
           B.add_seq_deferred b name ~role:Netlist.Slave)
         placements)
  in
  let placement_after = Array.of_list (List.map (fun p -> p.after) placements) in
  Array.iteri
    (fun i s -> B.connect b s ~fanins:[ repr.(placement_after.(i)) ])
    slave_id;
  List.iter
    (fun (id, v) ->
      let fanins =
        Array.to_list
          (Array.mapi
             (fun pin u ->
               match Hashtbl.find_opt capture (v, pin) with
               | Some i -> slave_id.(i)
               | None -> repr.(u))
             (Netlist.fanins net v))
      in
      B.connect b id ~fanins)
    !deferred;
  B.freeze b
