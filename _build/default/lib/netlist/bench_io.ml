module B = Netlist.Builder

type line =
  | L_input of string
  | L_output of string
  | L_assign of string * string * string list (* lhs, op, args *)
  | L_blank

let strip s = String.trim s

let parse_line ln =
  let s = strip ln in
  if s = "" || s.[0] = '#' then Ok L_blank
  else
    let paren s =
      match (String.index_opt s '(', String.rindex_opt s ')') with
      | Some i, Some j when j > i ->
        Some (strip (String.sub s 0 i), strip (String.sub s (i + 1) (j - i - 1)))
      | _ -> None
    in
    match String.index_opt s '=' with
    | None -> (
      match paren s with
      | Some (kw, arg) -> (
        match String.uppercase_ascii kw with
        | "INPUT" -> Ok (L_input arg)
        | "OUTPUT" -> Ok (L_output arg)
        | _ -> Error (Printf.sprintf "unknown directive %S" kw))
      | None -> Error "expected INPUT(..), OUTPUT(..) or an assignment")
    | Some eq -> (
      let lhs = strip (String.sub s 0 eq) in
      let rhs = strip (String.sub s (eq + 1) (String.length s - eq - 1)) in
      match paren rhs with
      | None -> Error "right-hand side must be OP(args)"
      | Some (op, args) ->
        let args =
          if strip args = "" then []
          else List.map strip (String.split_on_char ',' args)
        in
        Ok (L_assign (lhs, op, args)))

let parse text =
  let lines = String.split_on_char '\n' text in
  let b = B.create ~name:"bench" () in
  let ids = Hashtbl.create 64 in
  (* signal name -> node id (deferred for gates/flops) *)
  let pending = ref [] in
  (* (id, arg names) to connect *)
  let outputs = ref [] in
  let errors = ref [] in
  let lookup name =
    match Hashtbl.find_opt ids name with
    | Some id -> Ok id
    | None -> Error (Printf.sprintf "undefined signal %S" name)
  in
  let define name id =
    if Hashtbl.mem ids name then
      Error (Printf.sprintf "signal %S defined twice" name)
    else begin
      Hashtbl.add ids name id;
      Ok ()
    end
  in
  List.iteri
    (fun i ln ->
      let fail msg = errors := Printf.sprintf "line %d: %s" (i + 1) msg :: !errors in
      match parse_line ln with
      | Error msg -> fail msg
      | Ok L_blank -> ()
      | Ok (L_input name) -> (
        match define name (B.add_input b name) with
        | Ok () -> ()
        | Error msg -> fail msg)
      | Ok (L_output name) -> outputs := name :: !outputs
      | Ok (L_assign (lhs, op, args)) -> (
        let mk () =
          match String.uppercase_ascii op with
          | "DFF" -> Ok (B.add_seq_deferred b lhs ~role:Netlist.Flop)
          | _ -> (
            match Cell_kind.of_name op with
            | Some fn -> Ok (B.add_gate_deferred b lhs ~fn ())
            | None -> Error (Printf.sprintf "unknown operator %S" op))
        in
        match mk () with
        | Error msg -> fail msg
        | Ok id -> (
          match define lhs id with
          | Error msg -> fail msg
          | Ok () -> pending := (id, args, i + 1) :: !pending)))
    lines;
  (* Wire deferred nodes. *)
  List.iter
    (fun (id, args, lineno) ->
      let resolved = List.map lookup args in
      match
        List.fold_right
          (fun r acc ->
            match (r, acc) with
            | Ok id, Ok ids -> Ok (id :: ids)
            | Error e, _ -> Error e
            | _, (Error _ as e) -> e)
          resolved (Ok [])
      with
      | Ok fanins -> B.connect b id ~fanins
      | Error msg ->
        errors := Printf.sprintf "line %d: %s" lineno msg :: !errors)
    !pending;
  (* OUTPUT(x) names a signal; create a sink node for it. *)
  List.iter
    (fun name ->
      match lookup name with
      | Error msg -> errors := msg :: !errors
      | Ok id ->
        let po_name =
          if Hashtbl.mem ids (name ^ "$po") then name ^ "$po2" else name ^ "$po"
        in
        ignore (B.add_output b po_name ~fanin:id))
    (List.rev !outputs);
  match !errors with
  | e :: _ -> Error e
  | [] -> ( try Ok (B.freeze b) with Failure msg -> Error msg)

let parse_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  parse text

let op_name fn = String.uppercase_ascii (Cell_kind.name fn)

let print net =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "# %s\n" (Netlist.name net));
  Array.iter
    (fun v ->
      Buffer.add_string buf
        (Printf.sprintf "INPUT(%s)\n" (Netlist.node_name net v)))
    (Netlist.inputs net);
  Array.iter
    (fun v ->
      let driver = (Netlist.fanins net v).(0) in
      Buffer.add_string buf
        (Printf.sprintf "OUTPUT(%s)\n" (Netlist.node_name net driver)))
    (Netlist.outputs net);
  let args v =
    String.concat ", "
      (Array.to_list
         (Array.map (fun u -> Netlist.node_name net u) (Netlist.fanins net v)))
  in
  for v = 0 to Netlist.node_count net - 1 do
    match Netlist.kind net v with
    | Netlist.Input | Netlist.Output -> ()
    | Netlist.Gate { fn; _ } ->
      Buffer.add_string buf
        (Printf.sprintf "%s = %s(%s)\n" (Netlist.node_name net v) (op_name fn)
           (args v))
    | Netlist.Seq _ ->
      Buffer.add_string buf
        (Printf.sprintf "%s = DFF(%s)\n" (Netlist.node_name net v) (args v))
  done;
  Buffer.contents buf

let write_file path net =
  let oc = open_out path in
  output_string oc (print net);
  close_out oc
