type t = {
  n_inputs : int;
  n_outputs : int;
  n_gates : int;
  n_flops : int;
  n_masters : int;
  n_slaves : int;
  depth : int;
  avg_fanin : float;
  avg_fanout : float;
  fn_histogram : (Cell_kind.t * int) list;
}

let compute net =
  let n_flops = ref 0 and n_masters = ref 0 and n_slaves = ref 0 in
  let fanin_total = ref 0 in
  let fanout_total = ref 0 and driver_count = ref 0 in
  let hist = Hashtbl.create 16 in
  for v = 0 to Netlist.node_count net - 1 do
    (match Netlist.kind net v with
    | Netlist.Seq Netlist.Flop -> incr n_flops
    | Netlist.Seq Netlist.Master -> incr n_masters
    | Netlist.Seq Netlist.Slave -> incr n_slaves
    | Netlist.Gate { fn; _ } ->
      fanin_total := !fanin_total + Array.length (Netlist.fanins net v);
      Hashtbl.replace hist fn (1 + Option.value ~default:0 (Hashtbl.find_opt hist fn))
    | Netlist.Input | Netlist.Output -> ());
    match Netlist.kind net v with
    | Netlist.Output -> ()
    | _ ->
      incr driver_count;
      fanout_total := !fanout_total + Netlist.fanout_count net v
  done;
  let n_gates = Array.length (Netlist.gates net) in
  {
    n_inputs = Array.length (Netlist.inputs net);
    n_outputs = Array.length (Netlist.outputs net);
    n_gates;
    n_flops = !n_flops;
    n_masters = !n_masters;
    n_slaves = !n_slaves;
    depth = Netlist.comb_depth net;
    avg_fanin =
      (if n_gates = 0 then 0. else float_of_int !fanin_total /. float_of_int n_gates);
    avg_fanout =
      (if !driver_count = 0 then 0.
       else float_of_int !fanout_total /. float_of_int !driver_count);
    fn_histogram =
      List.sort
        (fun (a, _) (b, _) -> compare a b)
        (Hashtbl.fold (fun k c acc -> (k, c) :: acc) hist []);
  }

let pp ppf t =
  Format.fprintf ppf
    "@[<v>pi=%d po=%d gates=%d flops=%d masters=%d slaves=%d depth=%d@ \
     avg_fanin=%.2f avg_fanout=%.2f@ kinds: %a@]"
    t.n_inputs t.n_outputs t.n_gates t.n_flops t.n_masters t.n_slaves t.depth
    t.avg_fanin t.avg_fanout
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       (fun ppf (k, c) -> Format.fprintf ppf "%a=%d" Cell_kind.pp k c))
    t.fn_histogram
