(** Combinational cell functions.

    Each gate node in a netlist carries a [Cell_kind.t] describing its
    boolean function. The set mirrors a small standard-cell library:
    simple gates, a few complex AOI/OAI cells and a 2:1 mux. Arity is
    fixed per kind except for the n-ary simple gates, whose arity is
    recorded on the netlist node itself. *)

type t =
  | Buf
  | Inv
  | And
  | Nand
  | Or
  | Nor
  | Xor
  | Xnor
  | Aoi21  (** !(a*b + c), 3 inputs *)
  | Oai21  (** !((a+b) * c), 3 inputs *)
  | Mux2   (** s ? b : a, inputs ordered [a; b; s] *)

val all : t list
(** Every kind, in declaration order. *)

val name : t -> string
(** Lower-case library name, e.g. ["nand"]. *)

val of_name : string -> t option
(** Inverse of {!name}; case-insensitive. Also accepts the ISCAS89
    spelling ["not"] for {!Inv} and ["buff"] for {!Buf}. *)

val arity : t -> int option
(** [Some n] when the kind has a fixed arity, [None] for the n-ary
    simple gates ([And], [Nand], [Or], [Nor], [Xor], [Xnor]). *)

val min_arity : t -> int
(** Smallest legal number of inputs. *)

val valid_arity : t -> int -> bool
(** [valid_arity k n] holds when a [k]-gate may have [n] inputs. *)

val eval : t -> bool array -> bool
(** [eval k inputs] computes the boolean function. Raises
    [Invalid_argument] on an arity mismatch. *)

type unateness = Positive | Negative | Non_unate

val unateness : t -> int -> unateness
(** [unateness k pin] is the unateness of output w.r.t. input [pin]:
    [Positive] when a rising input can only cause a rising output,
    [Negative] for the inverting gates, [Non_unate] when both arcs
    exist (XOR-like cells and mux select). Used by path-based STA to
    pair rise/fall arrivals with the correct pin-to-pin arcs. *)

val is_inverting : t -> bool
(** True for the kinds whose output is the complement of the
    corresponding non-inverting kind ([Inv], [Nand], [Nor], [Xnor],
    [Aoi21], [Oai21]). *)

val pp : Format.formatter -> t -> unit
