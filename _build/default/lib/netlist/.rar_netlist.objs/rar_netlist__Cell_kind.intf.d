lib/netlist/cell_kind.mli: Format
