lib/netlist/cell_kind.ml: Array Format Fun Printf String
