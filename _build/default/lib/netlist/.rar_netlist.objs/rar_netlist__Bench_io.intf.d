lib/netlist/bench_io.mli: Netlist
