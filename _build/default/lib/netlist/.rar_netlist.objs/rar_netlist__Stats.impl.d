lib/netlist/stats.ml: Array Cell_kind Format Hashtbl List Netlist Option
