lib/netlist/dot.mli: Netlist
