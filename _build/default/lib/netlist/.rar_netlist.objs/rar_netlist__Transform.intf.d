lib/netlist/transform.mli: Netlist
