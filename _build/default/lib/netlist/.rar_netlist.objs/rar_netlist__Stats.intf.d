lib/netlist/stats.mli: Cell_kind Format Netlist
