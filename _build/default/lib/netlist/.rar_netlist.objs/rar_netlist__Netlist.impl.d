lib/netlist/netlist.ml: Array Cell_kind Format Hashtbl Printf Queue Rar_util Seq
