lib/netlist/dot.ml: Buffer Cell_kind Netlist Printf
