lib/netlist/verilog_io.mli: Netlist
