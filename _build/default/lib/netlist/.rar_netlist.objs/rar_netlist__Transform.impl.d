lib/netlist/transform.ml: Array Hashtbl List Netlist Printf
