lib/netlist/bench_io.ml: Array Buffer Cell_kind Hashtbl List Netlist Printf String
