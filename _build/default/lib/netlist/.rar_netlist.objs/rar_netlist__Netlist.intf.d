lib/netlist/netlist.mli: Cell_kind Format
