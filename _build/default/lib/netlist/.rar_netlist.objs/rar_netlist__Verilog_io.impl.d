lib/netlist/verilog_io.ml: Array Buffer Cell_kind Hashtbl List Netlist Printf Result String
