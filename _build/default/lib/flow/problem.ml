module Vec = Rar_util.Vec

type arc = { src : int; dst : int; cost : int }

type t = {
  n : int;
  arcs : arc Vec.t;
  demands : float array;
  mutable adj_out : int array array option;
  mutable adj_in : int array array option;
}

let create ~n =
  if n <= 0 then invalid_arg "Problem.create: n <= 0";
  { n; arcs = Vec.create (); demands = Array.make n 0.; adj_out = None;
    adj_in = None }

let node_count t = t.n
let arc_count t = Vec.length t.arcs

let check_node t v name =
  if v < 0 || v >= t.n then
    invalid_arg (Printf.sprintf "Problem.%s: node %d out of range" name v)

let add_arc t ~src ~dst ~cost =
  check_node t src "add_arc";
  check_node t dst "add_arc";
  if src = dst then invalid_arg "Problem.add_arc: self-loop";
  if t.adj_out <> None || t.adj_in <> None then
    invalid_arg "Problem.add_arc: adjacency already built";
  let id = Vec.length t.arcs in
  Vec.add_last t.arcs { src; dst; cost };
  id

let arc t i = Vec.get t.arcs i
let iter_arcs t f = Vec.iteri f t.arcs

let add_demand t v d =
  check_node t v "add_demand";
  t.demands.(v) <- t.demands.(v) +. d

let demand t v =
  check_node t v "demand";
  t.demands.(v)

let total_demand t = Array.fold_left ( +. ) 0. t.demands

let build_adj t select =
  let count = Array.make t.n 0 in
  Vec.iter (fun a -> count.(select a) <- count.(select a) + 1) t.arcs;
  let adj = Array.map (fun c -> Array.make c 0) count in
  let cursor = Array.make t.n 0 in
  Vec.iteri
    (fun i a ->
      let v = select a in
      adj.(v).(cursor.(v)) <- i;
      cursor.(v) <- cursor.(v) + 1)
    t.arcs;
  adj

let out_arcs t =
  match t.adj_out with
  | Some a -> a
  | None ->
    let a = build_adj t (fun arc -> arc.src) in
    t.adj_out <- Some a;
    a

let in_arcs t =
  match t.adj_in with
  | Some a -> a
  | None ->
    let a = build_adj t (fun arc -> arc.dst) in
    t.adj_in <- Some a;
    a
