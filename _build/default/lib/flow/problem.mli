(** Uncapacitated min-cost transshipment problems.

    The dual form every retiming LP in this project reduces to
    (paper Eq. 14): minimise [sum cost(a) * x(a)] over arc flows
    [x >= 0] subject to, at every node [v],
    [inflow(v) - outflow(v) = demand(v)].

    Arc costs are integers (they are latch counts / bound offsets), so
    optimal node potentials — the retiming values [r(v)] — are integral.
    Demands are floats (they carry the fractional fanout-sharing
    breadths beta = 1/k). *)

type arc = { src : int; dst : int; cost : int }

type t

val create : n:int -> t
(** [n] nodes, ids [0 .. n-1], zero demands, no arcs. *)

val node_count : t -> int
val arc_count : t -> int

val add_arc : t -> src:int -> dst:int -> cost:int -> int
(** Returns the arc id. Self-loops are rejected. *)

val arc : t -> int -> arc
val iter_arcs : t -> (int -> arc -> unit) -> unit

val add_demand : t -> int -> float -> unit
(** Accumulates into the node's demand. *)

val demand : t -> int -> float

val total_demand : t -> float
(** Must be ~0 for the problem to be feasible; solvers check this. *)

val out_arcs : t -> int array array
(** Adjacency (arc ids) indexed by source node; built lazily and
    cached. Do not add arcs after calling. *)

val in_arcs : t -> int array array
