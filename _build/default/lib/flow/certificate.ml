type report = {
  conservation_violations : int;
  negative_flows : int;
  dual_violations : int;
  slackness_violations : int;
  objective : float;
}

let eps = 1e-6

let check p ~flow ~potentials =
  let n = Problem.node_count p in
  let balance = Array.make n 0. in
  let negative_flows = ref 0 in
  let dual_violations = ref 0 in
  let slackness_violations = ref 0 in
  let objective = ref 0. in
  Problem.iter_arcs p (fun i a ->
      let x = flow.(i) in
      if x < -.eps then incr negative_flows;
      balance.(a.Problem.dst) <- balance.(a.Problem.dst) +. x;
      balance.(a.Problem.src) <- balance.(a.Problem.src) -. x;
      objective := !objective +. (float_of_int a.Problem.cost *. x);
      let reduced =
        a.Problem.cost + potentials.(a.Problem.src)
        - potentials.(a.Problem.dst)
      in
      if reduced < 0 then incr dual_violations;
      if x > eps && reduced <> 0 then incr slackness_violations);
  let conservation_violations = ref 0 in
  for v = 0 to n - 1 do
    if Float.abs (balance.(v) -. Problem.demand p v) > 1e-5 then
      incr conservation_violations
  done;
  {
    conservation_violations = !conservation_violations;
    negative_flows = !negative_flows;
    dual_violations = !dual_violations;
    slackness_violations = !slackness_violations;
    objective = !objective;
  }

let is_optimal r =
  r.conservation_violations = 0 && r.negative_flows = 0
  && r.dual_violations = 0 && r.slackness_violations = 0

let pp ppf r =
  Format.fprintf ppf
    "conservation=%d negative=%d dual=%d slackness=%d objective=%.6f"
    r.conservation_violations r.negative_flows r.dual_violations
    r.slackness_violations r.objective
