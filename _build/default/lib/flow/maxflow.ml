module Vec = Rar_util.Vec

let eps = 1e-9

type edge = { dst : int; mutable cap : float; inv : int }

type t = {
  n : int;
  edges : edge Vec.t;
  head : int list array; (* edge ids per node *)
  mutable ran : bool;
}

let create ~n = { n; edges = Vec.create (); head = Array.make n []; ran = false }

let add_edge t ~src ~dst ~cap =
  if cap < 0. then invalid_arg "Maxflow.add_edge: negative capacity";
  let i = Vec.length t.edges in
  Vec.add_last t.edges { dst; cap; inv = i + 1 };
  Vec.add_last t.edges { dst = src; cap = 0.; inv = i };
  t.head.(src) <- i :: t.head.(src);
  t.head.(dst) <- (i + 1) :: t.head.(dst)

let run t ~source ~sink =
  if t.ran then invalid_arg "Maxflow.run: already ran";
  t.ran <- true;
  let head = Array.map Array.of_list t.head in
  let edges = Vec.to_array t.edges in
  let level = Array.make t.n (-1) in
  let iter = Array.make t.n 0 in
  let bfs () =
    Array.fill level 0 t.n (-1);
    level.(source) <- 0;
    let q = Queue.create () in
    Queue.add source q;
    while not (Queue.is_empty q) do
      let u = Queue.pop q in
      Array.iter
        (fun ei ->
          let e = edges.(ei) in
          if e.cap > eps && level.(e.dst) < 0 then begin
            level.(e.dst) <- level.(u) + 1;
            Queue.add e.dst q
          end)
        head.(u)
    done;
    level.(sink) >= 0
  in
  let rec dfs u pushed =
    if u = sink then pushed
    else begin
      let result = ref 0. in
      while !result = 0. && iter.(u) < Array.length head.(u) do
        let ei = head.(u).(iter.(u)) in
        let e = edges.(ei) in
        if e.cap > eps && level.(e.dst) = level.(u) + 1 then begin
          let d = dfs e.dst (Float.min pushed e.cap) in
          if d > eps then begin
            e.cap <- e.cap -. d;
            edges.(e.inv).cap <- edges.(e.inv).cap +. d;
            result := d
          end
          else iter.(u) <- iter.(u) + 1
        end
        else iter.(u) <- iter.(u) + 1
      done;
      !result
    end
  in
  let total = ref 0. in
  while bfs () do
    Array.fill iter 0 t.n 0;
    let pushed = ref (dfs source infinity) in
    while !pushed > eps do
      total := !total +. !pushed;
      pushed := dfs source infinity
    done
  done;
  !total

let min_cut_source_side t ~source =
  if not t.ran then invalid_arg "Maxflow.min_cut_source_side: run first";
  let seen = Array.make t.n false in
  let stack = ref [ source ] in
  seen.(source) <- true;
  while !stack <> [] do
    match !stack with
    | [] -> ()
    | u :: rest ->
      stack := rest;
      List.iter
        (fun ei ->
          let e = Vec.get t.edges ei in
          if e.cap > eps && not seen.(e.dst) then begin
            seen.(e.dst) <- true;
            stack := e.dst :: !stack
          end)
        t.head.(u)
  done;
  seen
