(** Maximum-weight closure (project selection) by min-cut.

    The binary specialisation of the retiming LP (DESIGN.md §5): with
    retiming values restricted to [{-1, 0}], picking the set
    [Y = { v | r(v) = -1 }] under monotone implication constraints is a
    max-profit closure problem, solved exactly by one max-flow. Used as
    an independent cross-check of the network-simplex / SSP engines and
    as a fast path on large circuits. *)

type instance = {
  n : int;
  profit : float array;
    (** profit of selecting node [v]; objective is
        [maximise sum over selected] *)
  implications : (int * int) list;
    (** [(v, u)]: selecting [v] requires selecting [u] *)
  must_select : int list;
  must_reject : int list;
}

type outcome = {
  selected : bool array;
  best_profit : float;  (** total profit of the selected set *)
}

val solve : instance -> (outcome, string) result
(** Errors when a node is both forced selected and rejected (directly
    or through implications). *)
