type instance = {
  n : int;
  profit : float array;
  implications : (int * int) list;
  must_select : int list;
  must_reject : int list;
}

type outcome = { selected : bool array; best_profit : float }

let solve inst =
  if Array.length inst.profit <> inst.n then
    invalid_arg "Closure.solve: profit length mismatch";
  let source = inst.n and sink = inst.n + 1 in
  let mf = Maxflow.create ~n:(inst.n + 2) in
  (* "Infinite" capacity: larger than any finite cut. *)
  let inf_cap =
    let s = Array.fold_left (fun acc p -> acc +. Float.abs p) 1. inst.profit in
    1e6 *. s
  in
  let positive_total = ref 0. in
  Array.iteri
    (fun v p ->
      if p > 0. then begin
        positive_total := !positive_total +. p;
        Maxflow.add_edge mf ~src:source ~dst:v ~cap:p
      end
      else if p < 0. then Maxflow.add_edge mf ~src:v ~dst:sink ~cap:(-.p))
    inst.profit;
  List.iter
    (fun (v, u) ->
      if v <> u then Maxflow.add_edge mf ~src:v ~dst:u ~cap:inf_cap)
    inst.implications;
  List.iter
    (fun v -> Maxflow.add_edge mf ~src:source ~dst:v ~cap:inf_cap)
    inst.must_select;
  List.iter
    (fun v -> Maxflow.add_edge mf ~src:v ~dst:sink ~cap:inf_cap)
    inst.must_reject;
  let cut = Maxflow.run mf ~source ~sink in
  if cut >= inf_cap *. 0.5 then
    Error "Closure.solve: contradictory forced selections"
  else begin
    let side = Maxflow.min_cut_source_side mf ~source in
    let selected = Array.init inst.n (fun v -> side.(v)) in
    let best_profit = ref 0. in
    Array.iteri
      (fun v s -> if s then best_profit := !best_profit +. inst.profit.(v))
      selected;
    Ok { selected; best_profit = !best_profit }
  end
