(** Dinic max-flow over float capacities, the engine behind
    {!Closure}. *)

type t

val create : n:int -> t
val add_edge : t -> src:int -> dst:int -> cap:float -> unit
(** Directed edge; capacities accumulate if added twice. *)

val run : t -> source:int -> sink:int -> float
(** Max-flow value. May be called once per instance. *)

val min_cut_source_side : t -> source:int -> bool array
(** After {!run}: nodes reachable from [source] in the residual
    graph. *)
