let inf = max_int / 2

(* Queue-based Bellman–Ford with a relaxation-count cycle detector: a
   node enqueued more than [n] times lies on (or is fed by) a negative
   cycle. *)
let run ~n ~arcs ~init =
  let out = Array.make n [] in
  Array.iter (fun (u, v, c) -> out.(u) <- (v, c) :: out.(u)) arcs;
  let dist = Array.copy init in
  let in_queue = Array.make n false in
  let passes = Array.make n 0 in
  let q = Queue.create () in
  for v = 0 to n - 1 do
    if dist.(v) < inf then begin
      Queue.add v q;
      in_queue.(v) <- true
    end
  done;
  let bad = ref None in
  while !bad = None && not (Queue.is_empty q) do
    let u = Queue.pop q in
    in_queue.(u) <- false;
    List.iter
      (fun (v, c) ->
        if dist.(u) + c < dist.(v) then begin
          dist.(v) <- dist.(u) + c;
          if not in_queue.(v) then begin
            passes.(v) <- passes.(v) + 1;
            if passes.(v) > n then bad := Some v
            else begin
              Queue.add v q;
              in_queue.(v) <- true
            end
          end
        end)
      out.(u)
  done;
  match !bad with
  | Some v -> Error (Printf.sprintf "negative cycle (through node %d)" v)
  | None -> Ok dist

let from_virtual_root ~n ~arcs = run ~n ~arcs ~init:(Array.make n 0)

let from_root ~n ~arcs ~root =
  let init = Array.make n inf in
  init.(root) <- 0;
  run ~n ~arcs ~init
