(** Optimality certificates for min-cost-flow solutions.

    A flow [x] and node potentials [pi] jointly certify optimality of
    both (paper §IV-D: the retiming values are the duals of the flow):

    - primal feasibility: conservation at every node, [x >= 0];
    - dual feasibility: reduced cost [c + pi(src) - pi(dst) >= 0] on
      every arc;
    - complementary slackness: arcs carrying flow have zero reduced
      cost.

    Used by the test-suite to check the solvers against each other
    without trusting either, and exposed so downstream users can audit
    a retiming result. *)

type report = {
  conservation_violations : int;
  negative_flows : int;
  dual_violations : int;
  slackness_violations : int;
  objective : float;
}

val check :
  Problem.t -> flow:float array -> potentials:int array -> report

val is_optimal : report -> bool
(** All violation counts zero. *)

val pp : Format.formatter -> report -> unit
