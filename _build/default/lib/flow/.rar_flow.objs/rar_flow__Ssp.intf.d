lib/flow/ssp.mli: Problem
