lib/flow/difflp.mli:
