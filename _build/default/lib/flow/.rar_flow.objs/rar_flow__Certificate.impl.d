lib/flow/certificate.ml: Array Float Format Problem
