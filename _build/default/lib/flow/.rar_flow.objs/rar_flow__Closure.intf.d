lib/flow/closure.mli:
