lib/flow/spfa.mli:
