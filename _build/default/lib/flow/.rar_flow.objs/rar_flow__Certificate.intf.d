lib/flow/certificate.mli: Format Problem
