lib/flow/problem.mli:
