lib/flow/ssp.ml: Array Float Problem Rar_util Spfa
