lib/flow/netsimplex.ml: Array Float List Problem Queue
