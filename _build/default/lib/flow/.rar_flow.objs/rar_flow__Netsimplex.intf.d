lib/flow/netsimplex.mli: Problem
