lib/flow/closure.ml: Array Float List Maxflow
