lib/flow/maxflow.ml: Array Float List Queue Rar_util
