lib/flow/maxflow.mli:
