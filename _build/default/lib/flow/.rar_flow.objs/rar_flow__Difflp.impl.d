lib/flow/difflp.ml: Array Buffer Closure Float Netsimplex Printf Problem Rar_util Ssp
