lib/flow/problem.ml: Array Printf Rar_util
