lib/flow/spfa.ml: Array List Printf Queue
