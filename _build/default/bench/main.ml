(* Benchmark harness: one Bechamel measurement group per paper table,
   timing the computational kernel that regenerates it, followed by the
   printed rows of each table on a representative subset of the suite
   (set RAR_BENCH_FULL=1 for all twelve circuits; EXPERIMENTS.md records
   a full run).

   Groups:
     table_i    benchmark preparation (generate + derive clock + STA)
     table_ii   G-RAR under the gate-based vs path-based delay model
     table_iii  the three virtual-library variants
     table_iv_v base retiming vs RVL-RAR vs G-RAR (areas)
     table_vi   placement decode + verification pass
     table_vii  LP engine ablation: network simplex vs SSP vs closure
     table_viii error-rate simulation
     table_ix   movable-master local search
     fig1       clocking arithmetic (diagram rendering)
     fig4       the worked-example pipeline end to end *)

open Bechamel
open Toolkit

module Report = Rar_report.Report
module Suite = Rar_circuits.Suite
module Fig4 = Rar_circuits.Fig4
module Stage = Rar_retime.Stage
module Rgraph = Rar_retime.Rgraph
module Grar = Rar_retime.Grar
module Base = Rar_retime.Base_retiming
module Outcome = Rar_retime.Outcome
module Vl = Rar_vl.Vl
module Movable = Rar_vl.Movable
module Sim = Rar_sim.Sim
module Sta = Rar_sta.Sta
module Difflp = Rar_flow.Difflp
module Transform = Rar_netlist.Transform
module Clocking = Rar_sta.Clocking

let ok = function Ok v -> v | Error e -> failwith e

(* Representative circuit for the timed kernels: s1423 is the smallest
   benchmark on which every engine behaves non-trivially. *)
let ctx = Report.create ~names:[ "s1423" ] ~sim_cycles:50 ()
let circuit = "s1423"

let prepared = lazy (Report.prepared ctx circuit)
let stage_path = lazy (Report.stage ctx circuit)
let stage_gate = lazy (Report.stage ctx ~model:Sta.Gate_based circuit)

let grar_result = lazy (Report.grar ctx circuit ~c:1.0)

let sim_design =
  lazy
    (let r = Lazy.force grar_result in
     let st = r.Grar.stage in
     let cc = Stage.cc st in
     let staged = Transform.apply_retiming cc r.Grar.outcome.Outcome.placements in
     let p = Lazy.force prepared in
     {
       Sim.staged;
       lib = p.Suite.lib;
       clocking = p.Suite.clocking;
       ed_sinks =
         List.map
           (fun s -> Sim.sink_of_comb ~comb:cc.Transform.comb ~staged s)
           r.Grar.outcome.Outcome.ed_sinks;
     })

let tests =
  [
    Test.make ~name:"table_i/prepare" (Staged.stage (fun () ->
        ignore (Suite.load circuit)));
    Test.make ~name:"table_ii/grar_path" (Staged.stage (fun () ->
        ignore (ok (Grar.run_on_stage ~c:1.0 (Lazy.force stage_path)))));
    Test.make ~name:"table_ii/grar_gate" (Staged.stage (fun () ->
        ignore (ok (Grar.run_on_stage ~c:1.0 (Lazy.force stage_gate)))));
    Test.make ~name:"table_iii/nvl" (Staged.stage (fun () ->
        ignore (ok (Vl.run_on_stage ~c:1.0 Vl.Nvl (Lazy.force stage_path)))));
    Test.make ~name:"table_iii/evl" (Staged.stage (fun () ->
        ignore (ok (Vl.run_on_stage ~c:1.0 Vl.Evl (Lazy.force stage_path)))));
    Test.make ~name:"table_iii/rvl" (Staged.stage (fun () ->
        ignore (ok (Vl.run_on_stage ~c:1.0 Vl.Rvl (Lazy.force stage_path)))));
    Test.make ~name:"table_iv_v/base" (Staged.stage (fun () ->
        ignore (ok (Base.run_on_stage ~c:1.0 (Lazy.force stage_path)))));
    Test.make ~name:"table_vi/decode_verify" (Staged.stage (fun () ->
        let st = Lazy.force stage_path in
        let g = Rgraph.build ~edl_overhead:1.0 st in
        let r = ok (Rgraph.solve g) in
        let placements = Rgraph.placements_of g r in
        ignore (Outcome.assemble ~c:1.0 st placements)));
    Test.make ~name:"table_vii/engine_simplex" (Staged.stage (fun () ->
        let g = Rgraph.build ~edl_overhead:1.0 (Lazy.force stage_path) in
        ignore (ok (Rgraph.solve ~engine:Difflp.Network_simplex g))));
    Test.make ~name:"table_vii/engine_ssp" (Staged.stage (fun () ->
        let g = Rgraph.build ~edl_overhead:1.0 (Lazy.force stage_path) in
        ignore (ok (Rgraph.solve ~engine:Difflp.Ssp g))));
    Test.make ~name:"table_vii/engine_closure" (Staged.stage (fun () ->
        let g = Rgraph.build ~edl_overhead:1.0 (Lazy.force stage_path) in
        ignore (ok (Rgraph.solve ~engine:Difflp.Closure g))));
    Test.make ~name:"table_viii/sim_50_cycles" (Staged.stage (fun () ->
        ignore (Sim.error_rate ~cycles:50 ~seed:"bench" (Lazy.force sim_design))));
    Test.make ~name:"table_ix/movable" (Staged.stage (fun () ->
        let p = Lazy.force prepared in
        ignore
          (ok
             (Movable.run ~max_moves:2 ~lib:p.Suite.lib
                ~clocking:p.Suite.clocking ~c:1.0 p.Suite.two_phase))));
    Test.make ~name:"ablation/edl_cluster" (Staged.stage (fun () ->
        let r = Lazy.force grar_result in
        ignore
          (Rar_retime.Edl_cluster.annotate
             ~lib:(Lazy.force prepared).Suite.lib r.Grar.outcome)));
    Test.make ~name:"ablation/period_search" (Staged.stage (fun () ->
        ignore
          (Rar_retime.Period_search.min_feasible ~lib:(Fig4.library ())
             (Fig4.circuit ()))));
    Test.make ~name:"ablation/classic_retiming" (Staged.stage (fun () ->
        let p = Lazy.force prepared in
        let g =
          Rar_retime.Classic.of_netlist ~host_registers:1 ~lib:p.Suite.lib
            p.Suite.flop_netlist
        in
        let pmin = Rar_retime.Classic.min_period g in
        ignore (ok (Rar_retime.Classic.retime g ~period:pmin))));
    Test.make ~name:"fig1/clocking" (Staged.stage (fun () ->
        let c = Clocking.of_p 1.0 in
        ignore (Format.asprintf "%a" Clocking.pp_diagram c)));
    Test.make ~name:"fig4/worked_example" (Staged.stage (fun () ->
        ignore
          (ok
             (Grar.run ~lib:(Fig4.library ()) ~clocking:Fig4.clocking ~c:2.0
                (Fig4.circuit ())))));
  ]

let run_benchmarks () =
  let instance = Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 2.0) ~kde:(Some 10) ()
  in
  Printf.printf "== Bechamel kernels (circuit %s, monotonic clock) ==\n%!"
    circuit;
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ instance ] (Test.make_grouped ~name:"g" [ test ]) in
      let ols =
        Analyze.all
          (Analyze.ols ~bootstrap:0 ~r_square:false
             ~predictors:[| Measure.run |])
          instance results
      in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ est ] ->
            Printf.printf "  %-28s %12.0f ns/run\n%!" name est
          | _ -> Printf.printf "  %-28s (no estimate)\n%!" name)
        ols)
    tests

let run_tables () =
  let names =
    if Sys.getenv_opt "RAR_BENCH_FULL" = Some "1" then
      Rar_circuits.Spec.names
    else [ "s1196"; "s1238"; "s1423"; "s1488"; "s5378" ]
  in
  let t = Report.create ~names ~sim_cycles:200 () in
  List.iter
    (fun (_, title, body) ->
      Printf.printf "\n%s\n\n%s%!" title body)
    (Report.all_tables t)

(* Ablation: how much of the EDL saving survives once the error-signal
   collection tree (folded into c by the paper) is made explicit. *)
let run_cluster_ablation () =
  let lib = (Lazy.force prepared).Suite.lib in
  Printf.printf "\n== Ablation: error-collection tree (circuit %s, c = 1) ==\n"
    circuit;
  Printf.printf "  %-6s %6s %12s %14s %10s\n" "engine" "EDL#" "seq area"
    "seq + OR tree" "tree gates";
  let show tag (o : Outcome.t) =
    let o', tree = Rar_retime.Edl_cluster.annotate ~lib o in
    Printf.printf "  %-6s %6d %12.2f %14.2f %10d\n" tag
      (Outcome.ed_count o) o.Outcome.seq_area o'.Outcome.seq_area
      tree.Rar_retime.Edl_cluster.or_gates
  in
  show "base" (ok (Base.run_on_stage ~c:1.0 (Lazy.force stage_path))).Base.outcome;
  show "rvl"
    (ok (Vl.run_on_stage ~c:1.0 Vl.Rvl (Lazy.force stage_path))).Vl.outcome;
  show "grar" (Lazy.force grar_result).Grar.outcome

(* Ablation: resynthesis (buffer cleanup + timing-driven decomposition
   of wide gates) before retiming — the paper's related-work lever. *)
let run_resynth_ablation () =
  let lib = Rar_liberty.Liberty.default () in
  Printf.printf "\n== Ablation: resynthesis before retiming (circuit %s, c = 1) ==\n"
    circuit;
  let spec = Option.get (Rar_circuits.Spec.find circuit) in
  let net = Rar_circuits.Generator.generate spec in
  let net', rs = Rar_retime.Resynth.optimize ~lib net in
  Printf.printf
    "  rewrites: %d bufs removed, %d inv pairs removed, %d gates decomposed \
     (+%d internals)\n"
    rs.Rar_retime.Resynth.bufs_removed rs.Rar_retime.Resynth.inv_pairs_removed
    rs.Rar_retime.Resynth.gates_decomposed rs.Rar_retime.Resynth.gates_added;
  let show tag n =
    let p = Suite.prepare ~lib n in
    match
      Stage.make ~lib ~clocking:p.Suite.clocking p.Suite.cc
    with
    | Error e -> Printf.printf "  %s: %s\n" tag e
    | Ok st -> (
      match Grar.run_on_stage ~c:1.0 st with
      | Error e -> Printf.printf "  %s: %s\n" tag e
      | Ok r ->
        Printf.printf
          "  %-12s P=%.3f slaves=%d edl=%d seq=%.2f comb=%.2f total=%.2f\n"
          tag p.Suite.p r.Grar.outcome.Outcome.n_slaves
          (Outcome.ed_count r.Grar.outcome)
          r.Grar.outcome.Outcome.seq_area r.Grar.outcome.Outcome.comb_area
          r.Grar.outcome.Outcome.total_area)
  in
  show "original" net;
  show "resynthesised" net'

let () =
  run_benchmarks ();
  run_cluster_ablation ();
  run_resynth_ablation ();
  run_tables ()
