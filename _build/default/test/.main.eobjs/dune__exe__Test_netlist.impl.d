test/test_netlist.ml: Alcotest Array Gen List Option Printf QCheck QCheck_alcotest Rar_circuits Rar_netlist String
