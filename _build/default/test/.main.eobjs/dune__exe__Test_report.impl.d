test/test_report.ml: Alcotest Lazy List Option Printf Rar_report Rar_retime String
