test/test_fig4.ml: Alcotest List Rar_circuits Rar_flow Rar_netlist Rar_retime Rar_sta
