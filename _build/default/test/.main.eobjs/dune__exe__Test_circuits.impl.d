test/test_circuits.ml: Alcotest Array List Option Printf QCheck QCheck_alcotest Rar_circuits Rar_netlist Rar_retime Rar_sta
