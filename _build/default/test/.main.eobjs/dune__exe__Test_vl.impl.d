test/test_vl.ml: Alcotest Array Lazy List Option Rar_circuits Rar_liberty Rar_netlist Rar_retime Rar_sta Rar_vl
