test/test_sim.ml: Alcotest Array Float Lazy List Rar_circuits Rar_netlist Rar_retime Rar_sim
