test/test_util.ml: Alcotest Array List QCheck QCheck_alcotest Rar_util
