test/main.ml: Alcotest Test_circuits Test_classic Test_extensions Test_fig4 Test_flow Test_liberty Test_netlist Test_report Test_resynth Test_retime Test_sim Test_sta Test_util Test_vl
