test/test_resynth.ml: Alcotest Array Hashtbl List Option Printf QCheck QCheck_alcotest Rar_circuits Rar_liberty Rar_netlist Rar_retime Rar_util
