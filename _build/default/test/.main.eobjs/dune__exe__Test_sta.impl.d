test/test_sta.ml: Alcotest Array Float Hashtbl List Option Printf QCheck QCheck_alcotest Rar_circuits Rar_liberty Rar_netlist Rar_sta Rar_util String
