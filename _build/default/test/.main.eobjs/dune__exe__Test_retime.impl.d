test/test_retime.ml: Alcotest Array Float Hashtbl List Printf QCheck QCheck_alcotest Rar_circuits Rar_flow Rar_liberty Rar_netlist Rar_retime Rar_sta
