test/test_extensions.ml: Alcotest Array QCheck QCheck_alcotest Rar_circuits Rar_flow Rar_liberty Rar_netlist Rar_retime Rar_sim Rar_util Result String
