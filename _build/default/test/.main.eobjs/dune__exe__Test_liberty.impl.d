test/test_liberty.ml: Alcotest List Printf Rar_circuits Rar_liberty Rar_netlist
