test/test_classic.ml: Alcotest Option Printf Rar_circuits Rar_flow Rar_liberty Rar_netlist Rar_retime
