test/main.mli:
