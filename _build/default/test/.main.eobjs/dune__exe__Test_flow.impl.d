test/test_flow.ml: Alcotest Array Float List Printf QCheck QCheck_alcotest Rar_flow Rar_util String
