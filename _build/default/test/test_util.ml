(* Unit and property tests for the Rar_util substrate. *)

module Vec = Rar_util.Vec
module Heap = Rar_util.Heap
module Rng = Rar_util.Rng

let test_vec_basic () =
  let v = Vec.create () in
  Alcotest.(check bool) "empty" true (Vec.is_empty v);
  for i = 0 to 99 do
    Vec.add_last v i
  done;
  Alcotest.(check int) "length" 100 (Vec.length v);
  Alcotest.(check int) "get" 42 (Vec.get v 42);
  Vec.set v 42 (-1);
  Alcotest.(check int) "set" (-1) (Vec.get v 42);
  Alcotest.(check int) "pop" 99 (Vec.pop_last v);
  Alcotest.(check int) "len after pop" 99 (Vec.length v);
  Alcotest.(check (list int)) "to_list tail" [ 0; 1; 2 ]
    (List.filteri (fun i _ -> i < 3) (Vec.to_list v))

let test_vec_bounds () =
  let v = Vec.of_list [ 1; 2; 3 ] in
  Alcotest.check_raises "get oob" (Invalid_argument "Vec.get: index 3 out of bounds (len 3)")
    (fun () -> ignore (Vec.get v 3))

let test_heap_sorts () =
  let h = Heap.create () in
  let input = [ 5.; 1.; 4.; 1.5; 9.; 0.; 2. ] in
  List.iter (fun p -> Heap.add h p (int_of_float (p *. 10.))) input;
  let rec drain acc =
    match Heap.pop_min h with
    | None -> List.rev acc
    | Some (p, _) -> drain (p :: acc)
  in
  Alcotest.(check (list (float 1e-9)))
    "ascending" (List.sort compare input) (drain [])

let test_heap_empty () =
  let h = Heap.create () in
  Alcotest.(check bool) "pop empty" true (Heap.pop_min h = None);
  Alcotest.(check bool) "peek empty" true (Heap.peek_min h = None)

let test_rng_deterministic () =
  let a = Rng.make 7 and b = Rng.make 7 in
  for _ = 1 to 50 do
    Alcotest.(check int) "same stream" (Rng.int a 1000) (Rng.int b 1000)
  done

let test_rng_of_string_stable () =
  let a = Rng.of_string "s1196" and b = Rng.of_string "s1196" in
  Alcotest.(check int) "named stream" (Rng.int a 1000000) (Rng.int b 1000000);
  let c = Rng.of_string "s1238" in
  (* Different names should (overwhelmingly) diverge quickly. *)
  let diverged = ref false in
  let a = Rng.of_string "s1196" in
  for _ = 1 to 10 do
    if Rng.int a 1000000 <> Rng.int c 1000000 then diverged := true
  done;
  Alcotest.(check bool) "streams diverge" true !diverged

let prop_heap_matches_sort =
  QCheck.Test.make ~name:"heap drains in sorted order" ~count:200
    QCheck.(list (float_bound_exclusive 1000.))
    (fun input ->
      let h = Heap.create () in
      List.iter (fun p -> Heap.add h p ()) input;
      let rec drain acc =
        match Heap.pop_min h with
        | None -> List.rev acc
        | Some (p, ()) -> drain (p :: acc)
      in
      drain [] = List.sort compare input)

let prop_rng_int_in_bounds =
  QCheck.Test.make ~name:"rng int stays in bounds" ~count:500
    QCheck.(pair small_int (int_bound 1000))
    (fun (seed, bound) ->
      let bound = bound + 1 in
      let rng = Rng.make seed in
      let ok = ref true in
      for _ = 1 to 20 do
        let x = Rng.int rng bound in
        if x < 0 || x >= bound then ok := false
      done;
      !ok)

let prop_shuffle_is_permutation =
  QCheck.Test.make ~name:"shuffle permutes" ~count:200
    QCheck.(pair small_int (list small_int))
    (fun (seed, l) ->
      let a = Array.of_list l in
      Rng.shuffle (Rng.make seed) a;
      List.sort compare (Array.to_list a) = List.sort compare l)

let suite =
  [
    Alcotest.test_case "vec basic ops" `Quick test_vec_basic;
    Alcotest.test_case "vec bounds check" `Quick test_vec_bounds;
    Alcotest.test_case "heap sorts" `Quick test_heap_sorts;
    Alcotest.test_case "heap empty" `Quick test_heap_empty;
    Alcotest.test_case "rng deterministic" `Quick test_rng_deterministic;
    Alcotest.test_case "rng named streams" `Quick test_rng_of_string_stable;
    QCheck_alcotest.to_alcotest prop_heap_matches_sort;
    QCheck_alcotest.to_alcotest prop_rng_int_in_bounds;
    QCheck_alcotest.to_alcotest prop_shuffle_is_permutation;
  ]
