(* Cell-library model tests: the properties the paper's text pins down
   (latch/flop area ratio, D-to-Q vs clock-to-Q spread, EDL overhead
   scaling) plus basic delay-model sanity. *)

module Liberty = Rar_liberty.Liberty
module Cell_kind = Rar_netlist.Cell_kind

let lib = Liberty.default ()

let test_all_cells_present () =
  List.iter
    (fun fn ->
      List.iter
        (fun d -> ignore (Liberty.comb_cell lib fn ~drive:d))
        (Liberty.drives lib))
    Cell_kind.all

let test_latch_flop_ratio () =
  (* §VI-D: "the average area of our latch is 43% of the area of a
     flip-flop". *)
  let latch = (Liberty.latch lib).Liberty.seq_area in
  let flop = (Liberty.flop lib).Liberty.seq_area in
  Alcotest.(check (float 1e-6)) "43%" 0.43 (latch /. flop)

let test_ckq_dq_spread () =
  (* §III: clock-to-Q and D-to-Q "may vary by up to 40%". *)
  let l = Liberty.latch lib in
  Alcotest.(check (float 1e-6)) "40% spread" 1.4
    (l.Liberty.ck_to_q /. l.Liberty.d_to_q)

let test_ed_latch_scaling () =
  let latch = Liberty.latch lib in
  List.iter
    (fun c ->
      let ed = Liberty.ed_latch lib ~c in
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "area at c=%.1f" c)
        ((1. +. c) *. latch.Liberty.seq_area)
        ed.Liberty.seq_area)
    [ 0.5; 1.0; 2.0 ];
  Alcotest.check_raises "negative overhead"
    (Invalid_argument "Liberty.ed_latch: negative overhead") (fun () ->
      ignore (Liberty.ed_latch lib ~c:(-0.1)))

let test_delay_monotone_in_load () =
  List.iter
    (fun fn ->
      let cell = Liberty.comb_cell lib fn ~drive:1 in
      let a1 = Liberty.pin_arc cell ~pin:0 ~load:1.0 in
      let a2 = Liberty.pin_arc cell ~pin:0 ~load:5.0 in
      Alcotest.(check bool)
        (Cell_kind.name fn ^ " rise monotone")
        true
        (a2.Liberty.rise >= a1.Liberty.rise);
      Alcotest.(check bool)
        (Cell_kind.name fn ^ " fall monotone")
        true (a2.Liberty.fall >= a1.Liberty.fall))
    Cell_kind.all

let test_higher_drive_faster_under_load () =
  let d1 = Liberty.comb_cell lib Cell_kind.Nand ~drive:1 in
  let d4 = Liberty.comb_cell lib Cell_kind.Nand ~drive:4 in
  let load = 8.0 in
  Alcotest.(check bool) "drive 4 faster at high load" true
    (Liberty.arc_max (Liberty.pin_arc d4 ~pin:0 ~load)
    < Liberty.arc_max (Liberty.pin_arc d1 ~pin:0 ~load));
  Alcotest.(check bool) "drive 4 larger" true (d4.Liberty.area > d1.Liberty.area)

let test_cell_delay_max_dominates () =
  let cell = Liberty.comb_cell lib Cell_kind.Aoi21 ~drive:2 in
  let worst = Liberty.cell_delay_max cell ~n_pins:3 ~load:3.0 in
  for pin = 0 to 2 do
    let a = Liberty.pin_arc cell ~pin ~load:3.0 in
    Alcotest.(check bool) "dominates" true (worst >= Liberty.arc_max a)
  done

let test_virtual_groups () =
  let g = Liberty.virtual_groups lib ~c:2.0 ~resiliency_window:0.3 in
  let latch = Liberty.latch lib in
  Alcotest.(check (float 1e-9)) "normal unchanged" latch.Liberty.setup
    g.Liberty.vl_normal.Liberty.setup;
  Alcotest.(check (float 1e-9)) "non-ed setup extended"
    (latch.Liberty.setup +. 0.3)
    g.Liberty.vl_non_ed.Liberty.setup;
  Alcotest.(check (float 1e-9)) "ed area" (3. *. latch.Liberty.seq_area)
    g.Liberty.vl_ed.Liberty.seq_area

let test_synthetic_constant_delay () =
  let latch =
    { Liberty.seq_area = 1.; d_to_q = 0.; ck_to_q = 0.; setup = 0.;
      seq_input_cap = 0. }
  in
  let lib =
    Liberty.synthetic ~name:"t" ~latch ~flop:latch
      ~cells:[ ((Cell_kind.Nand, 1), 2.0, 0.7) ]
  in
  let cell = Liberty.comb_cell lib Cell_kind.Nand ~drive:1 in
  let a0 = Liberty.pin_arc cell ~pin:0 ~load:0. in
  let a9 = Liberty.pin_arc cell ~pin:1 ~load:9. in
  Alcotest.(check (float 1e-9)) "load free" 0.7 (Liberty.arc_max a0);
  Alcotest.(check (float 1e-9)) "pin free" 0.7 (Liberty.arc_max a9)

(* --- .lib reader / writer ------------------------------------------ *)

module Liberty_io = Rar_liberty.Liberty_io

let test_lib_roundtrip () =
  let text = Liberty_io.print lib in
  match Liberty_io.parse text with
  | Error e -> Alcotest.fail e
  | Ok lib2 ->
    Alcotest.(check string) "name" (Liberty.name lib) (Liberty.name lib2);
    Alcotest.(check (list int)) "drives" (Liberty.drives lib)
      (Liberty.drives lib2);
    (* every cell's parameters survive *)
    List.iter
      (fun (c : Liberty.comb_cell) ->
        let c' = Liberty.comb_cell lib2 c.Liberty.fn ~drive:c.Liberty.drive in
        Alcotest.(check (float 1e-9)) "area" c.Liberty.area c'.Liberty.area;
        Alcotest.(check (float 1e-9)) "cap" c.Liberty.input_cap
          c'.Liberty.input_cap;
        Alcotest.(check (float 1e-9)) "intrinsic rise"
          c.Liberty.intrinsic.Liberty.rise c'.Liberty.intrinsic.Liberty.rise;
        Alcotest.(check (float 1e-9)) "slope fall"
          c.Liberty.load_slope.Liberty.fall c'.Liberty.load_slope.Liberty.fall;
        Alcotest.(check (float 1e-9)) "derate" c.Liberty.pin_derate
          c'.Liberty.pin_derate)
      (Liberty.all_cells lib);
    let l = Liberty.latch lib and l' = Liberty.latch lib2 in
    Alcotest.(check (float 1e-9)) "latch area" l.Liberty.seq_area
      l'.Liberty.seq_area;
    Alcotest.(check (float 1e-9)) "latch ckq" l.Liberty.ck_to_q
      l'.Liberty.ck_to_q;
    Alcotest.(check (float 1e-9)) "wire cap"
      (Liberty.wire_cap_per_fanout lib)
      (Liberty.wire_cap_per_fanout lib2)

let test_lib_parse_vendor_style () =
  (* A hand-written vendor-flavoured snippet with comments, strings,
     an unsupported cell (skipped) and apostrophe negation. *)
  let text =
    {x|/* tiny lib */
library (tiny) {
  time_unit : "1ns";
  cell (NAND2_X2) {
    area : 0.4;
    pin (A) { direction : input; capacitance : 1.0; }
    pin (B) { direction : input; capacitance : 1.2; }
    pin (ZN) {
      direction : output;
      function : "(A * B)'";
      timing () { related_pin : "A"; intrinsic_rise : 0.02;
                  intrinsic_fall : 0.015; rise_resistance : 0.01;
                  fall_resistance : 0.008; }
    }
  }
  cell (WEIRD) {
    area : 9;
    pin (A) { direction : input; capacitance : 1.0; }
    pin (Z) { direction : output; }
  }
  cell (LATCH_LP) {
    area : 2.0;
    latch (IQ, IQN) { }
    pin (D) { direction : input; capacitance : 0.9; }
  }
}|x}
  in
  match Liberty_io.parse text with
  | Error e -> Alcotest.fail e
  | Ok lib2 ->
    let c = Liberty.comb_cell lib2 Rar_netlist.Cell_kind.Nand ~drive:2 in
    Alcotest.(check (float 1e-9)) "area" 0.4 c.Liberty.area;
    Alcotest.(check (float 1e-9)) "cap is worst pin" 1.2 c.Liberty.input_cap;
    Alcotest.(check (float 1e-9)) "latch area" 2.0
      (Liberty.latch lib2).Liberty.seq_area

let test_lib_parse_errors () =
  (match Liberty_io.parse "nonsense" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected parse error");
  match Liberty_io.parse "library (x) { }" with
  | Error _ -> () (* no latch / no cells *)
  | Ok _ -> Alcotest.fail "expected missing-cell error"

let test_lib_drives_sta () =
  (* a parsed library drives the full flow *)
  let text = Liberty_io.print lib in
  match Liberty_io.parse text with
  | Error e -> Alcotest.fail e
  | Ok lib2 -> (
    match Rar_circuits.Suite.load ~lib:lib2 "s1196" with
    | Error e -> Alcotest.fail e
    | Ok p ->
      Alcotest.(check bool) "prepared" true (p.Rar_circuits.Suite.p > 0.))

let suite =
  [
    Alcotest.test_case "all cells present" `Quick test_all_cells_present;
    Alcotest.test_case "latch = 43% of flop" `Quick test_latch_flop_ratio;
    Alcotest.test_case "ck_to_q/d_to_q = 1.4" `Quick test_ckq_dq_spread;
    Alcotest.test_case "ED latch area scaling" `Quick test_ed_latch_scaling;
    Alcotest.test_case "delay monotone in load" `Quick test_delay_monotone_in_load;
    Alcotest.test_case "drive strength trade-off" `Quick
      test_higher_drive_faster_under_load;
    Alcotest.test_case "cell_delay_max dominates" `Quick
      test_cell_delay_max_dominates;
    Alcotest.test_case "virtual library groups" `Quick test_virtual_groups;
    Alcotest.test_case "synthetic library" `Quick test_synthetic_constant_delay;
    Alcotest.test_case ".lib roundtrip" `Quick test_lib_roundtrip;
    Alcotest.test_case ".lib vendor style" `Quick test_lib_parse_vendor_style;
    Alcotest.test_case ".lib errors" `Quick test_lib_parse_errors;
    Alcotest.test_case ".lib drives the flow" `Quick test_lib_drives_sta;
  ]
